// The PGX.D distributed sorting method (Sec. IV) — the paper's primary
// contribution, implemented as one coroutine per simulated machine over the
// runtime substrate.
//
// Pipeline (Sec. IV, steps 1-6):
//   1. Local parallel quicksort with the Fig. 2 balanced merge handler.
//   2. Regular samples (X = read_buffer / p bytes each) sent to the master.
//   3. Master selects p-1 splitters, broadcasts them.
//   4. Binary search of splitters on local data, with the duplicate-splitter
//      investigator (Fig. 3c); per-destination counts broadcast so every
//      receiver knows its offsets up front.
//   5. Simultaneous asynchronous send/receive of data ranges, streamed in
//      read-buffer-sized chunks through the data-manager request buffers.
//   6. Balanced parallel merge of the per-source sorted runs, keeping each
//      element's previous processor and index (provenance).
//
// All data movement is real (the output partitions are physically sorted
// real vectors); elapsed time is simulated through the cost model and the
// network fabric.
//
// Crash-stop recovery (SortConfig::recovery): the whole pipeline is
// parameterized over an *attempt membership* — an ordered subset of the
// cluster's ranks with member 0 as master — so the same code runs the clean
// p-rank sort and a shrunk (p-1)-rank re-run. A host-side supervisor
// (run_recovering) detects a member crash after each attempt, regenerates
// the dead rank's input shard from its deterministic source, and re-runs on
// the survivors; inside an attempt every receive polls for abort/control
// frames and failure-detector suspicion so survivors abandon a doomed
// attempt in bounded time instead of deadlocking, and exchange receivers
// hedge re-requests for straggling chunks off a quantile-based deadline so
// a slow NIC degrades throughput rather than stalling the merge barrier.
// With recovery disabled the clean path is byte-identical to before: every
// receive is a plain blocking recv and no control traffic exists.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/provenance.hpp"
#include "core/splitters.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"
#include "runtime/errors.hpp"
#include "sim/trace.hpp"
#include "sim/wait_graph.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/kway_merge.hpp"
#include "sort/local_sort.hpp"
#include "sort/parallel_kway_merge.hpp"
#include "sort/quicksort.hpp"
#include "sort/samples.hpp"
#include "sort/soa_merge.hpp"

namespace pgxd::core {

// One sortable element: the key plus where it came from.
template <typename Key>
struct Item {
  Key key;
  Provenance prov;
};

// Message payload for the sort's communication; which member is populated
// depends on the tag.
// Only keys travel on the wire. Data chunks carry `prov_base`: the chunk's
// start offset in the sender's locally sorted sequence, from which the
// receiver reconstructs per-element provenance — the paper's low exchange
// volume and its "memory used for keeping previous information" (receiver-
// side provenance arrays, Fig. 11) both follow from this design.
template <typename Key>
struct SortMsg {
  std::vector<Key> keys;              // kTagSamples / kTagSplitters / kTagData
  std::vector<std::uint64_t> counts;  // kTagCounts / kTagCtrl
  std::uint64_t prov_base = 0;        // kTagData: sender-side start offset
  // kTagData: offset of this chunk within the (src -> dst) range, so
  // receivers place chunks correctly even if the fabric reorders them
  // (e.g. under latency jitter).
  std::uint64_t rel_offset = 0;

  // User-declared constructors are load-bearing; see the note on
  // rt::Message about GCC 12 and aggregate temporaries in co_await.
  SortMsg() = default;
  SortMsg(std::vector<Key> k, std::vector<std::uint64_t> c, std::uint64_t base,
          std::uint64_t rel)
      : keys(std::move(k)), counts(std::move(c)), prov_base(base),
        rel_offset(rel) {}

  static SortMsg of_data(std::vector<Key> v, std::uint64_t base,
                         std::uint64_t rel) {
    return SortMsg(std::move(v), {}, base, rel);
  }
  static SortMsg of_keys(std::vector<Key> v) {
    return SortMsg(std::move(v), {}, 0, 0);
  }
  static SortMsg of_counts(std::vector<std::uint64_t> v) {
    return SortMsg({}, std::move(v), 0, 0);
  }
};

template <typename Key, typename Comp = sort::Less>
class DistributedSorter {
 public:
  using Msg = SortMsg<Key>;
  using Cluster = rt::Cluster<Msg>;
  using ItemT = Item<Key>;
  using Envelope = rt::Message<Msg>;

  // Tag layout; `sort_id` offsets the whole tag space so several sorts can
  // share one cluster run ("able to sort multiple different data
  // simultaneously"). kTagCtrl carries the recovery layer's out-of-band
  // frames (abort fan-outs, straggler re-requests). Tags 5-6 carry the
  // histogram-refinement rounds, 8-11 the AMS level-1 exchange; tags 7 and
  // 12-15 are reserved.
  static constexpr int kTagSamples = 0;
  static constexpr int kTagSplitters = 1;
  static constexpr int kTagCounts = 2;
  static constexpr int kTagData = 3;
  static constexpr int kTagCtrl = 4;
  static constexpr int kTagProbe = 5;       // master -> members: probe/draw/done
  static constexpr int kTagReply = 6;       // members -> master: round replies
  static constexpr int kTagL1Samples = 8;   // AMS: samples to the global master
  static constexpr int kTagGroupSplit = 9;  // AMS: coarse group splitters
  static constexpr int kTagL1Counts = 10;   // AMS: bucket size to the partner
  static constexpr int kTagL1Data = 11;     // AMS: the bucket itself
  static constexpr int kTagStride = 16;

  // Control-frame kinds (counts[0]); counts[1] is the attempt number.
  static constexpr std::uint64_t kCtrlAbort = 1;
  // counts[2..] are the missing chunk indices of the addressed source.
  static constexpr std::uint64_t kCtrlReRequest = 2;

  // Histogram-refinement frame kinds (kTagProbe counts[0]); counts[1] is a
  // per-attempt round sequence number so a duplicating fabric's redelivered
  // requests are recognized as stale.
  static constexpr std::uint64_t kProbeCount = 1;  // count these probe keys
  static constexpr std::uint64_t kProbeDraw = 2;   // draw inside these intervals
  static constexpr std::uint64_t kProbeDone = 3;   // refinement finished

  // Exchange wire cost: keys only (provenance is reconstructed at the
  // receiver from the message's source and prov_base), plus a small
  // per-message header.
  static constexpr std::uint64_t kDataWireBytesPerKey = sizeof(Key);
  static constexpr std::uint64_t kChunkHeaderBytes = 16;
  // Receiver-side storage per element: key + provenance record.
  static constexpr std::uint64_t kStoredBytesPerItem =
      sizeof(Key) + kProvenanceBytes;

  DistributedSorter(Cluster& cluster, SortConfig cfg, int sort_id = 0,
                    Comp comp = {})
      : cluster_(cluster), cfg_(cfg), base_tag_(sort_id * kTagStride),
        comp_(comp) {
    const std::string why = cfg_.validate();
    PGXD_CHECK_MSG(why.empty(), why.c_str());
    const std::size_t p = cluster_.size();
    input_.resize(p);
    output_.resize(p);
    stats_.machines.resize(p);
    metrics_.resize(p);
  }

  // Installs per-machine input shards (must be called before the cluster
  // run that executes machine_program).
  void set_input(std::vector<std::vector<Key>> shards) {
    PGXD_CHECK(shards.size() == cluster_.size());
    input_ = std::move(shards);
  }

  // Deterministic regeneration of a dead rank's input shard — the stand-in
  // for durable storage. Defaults to replaying the shard installed via
  // set_input (the host still holds it); drivers whose shards come from
  // seeded datagen can install a regenerator instead to model "re-read
  // from the seed, not from the crashed node's memory".
  void set_shard_source(std::function<std::vector<Key>(std::size_t)> src) {
    shard_source_ = std::move(src);
  }

  // Convenience: install shards, run this sort alone on the cluster, and
  // finalize statistics. With SortConfig::recovery enabled this runs the
  // crash-recovery supervisor instead of a single cluster run.
  void run(std::vector<std::vector<Key>> shards) {
    set_input(std::move(shards));
    if (cfg_.recovery.enabled) {
      run_recovering();
      return;
    }
    const sim::SimTime elapsed = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    finalize(elapsed);
  }

  // Per-machine pipeline over the full membership; exposed so callers can
  // co-schedule several sorts (see sort_simultaneously) — call finalize()
  // with the run's elapsed time afterwards. Not a coroutine (GCC 12: a
  // prvalue argument bound to a coroutine by-value parameter miscompiles).
  sim::Task<void> machine_program(rt::Machine& m) {
    std::vector<std::size_t> members(cluster_.size());
    std::iota(members.begin(), members.end(), std::size_t{0});
    AttemptCtx ctx(0, std::move(members));
    return sort_attempt_impl(m, std::move(ctx));
  }

  // Aggregates per-machine stats; call after the cluster run completes.
  void finalize(sim::SimTime elapsed) {
    stats_.total_time = elapsed;
    stats_.steps_max = StepTimings{};
    for (const auto& ms : stats_.machines) stats_.steps_max.max_with(ms.steps);
    // Balance over the ranks that produced output: after a recovery the
    // dead ranks' partitions are empty by construction, and counting them
    // would report a meaningless imbalance.
    std::vector<std::uint64_t> sizes;
    if (!final_members_.empty()) {
      sizes.reserve(final_members_.size());
      for (std::size_t r : final_members_) sizes.push_back(output_[r].size());
    } else {
      sizes.reserve(output_.size());
      for (const auto& part : output_) sizes.push_back(part.size());
    }
    stats_.balance = balance_report(sizes);
    stats_.splitters = splitters_;
    stats_.wire_bytes_total = wire_data_bytes_ + wire_control_bytes_;
    stats_.wire_bytes_samples = wire_control_bytes_;
    stats_.partition.scheme = cfg_.partition;
    stats_.partition.rounds = part_rounds_;
    stats_.partition.epsilon_target =
        cfg_.partition == PartitionScheme::kHistogramRefine
            ? cfg_.partition_epsilon
            : 0.0;
    // Achieved epsilon in the balance metric: worst relative partition-size
    // deviation over the final output (imbalance is max_size/ideal).
    stats_.partition.achieved_epsilon =
        stats_.balance.imbalance >= 1.0 ? stats_.balance.imbalance - 1.0
                                        : 0.0;
    stats_.partition.groups = part_groups_;
    std::uint64_t sample_keys = 0;
    for (const auto& ms : stats_.machines) sample_keys += ms.sample_count;
    stats_.partition.sample_keys = sample_keys;
    stats_.partition.probe_keys = part_probe_keys_;
    stats_.partition.level1_items = part_level1_items_;
    if (stats_.recovery.final_members == 0)
      stats_.recovery.final_members = output_.size();
    if (cfg_.telemetry) {
      // Fold the substrate's counters into the per-rank registries: NIC
      // traffic/fault counters, the comm layer's reliable-delivery stats
      // (rank 0), and the shared exchange buffer pool (rank 0 — the pool is
      // cluster-wide).
      for (std::size_t r = 0; r < metrics_.size(); ++r)
        cluster_.export_metrics(metrics_[r], r);
      const rt::BufferPoolStats& ps = pool_.stats();
      obs::MetricsRegistry& reg0 = metrics_[0];
      reg0.counter("sort.pool.leases").inc(ps.leases);
      reg0.counter("sort.pool.reuses").inc(ps.reuses);
      reg0.counter("sort.pool.fresh_allocs").inc(ps.fresh_allocs);
      reg0.counter("sort.pool.returns").inc(ps.returns);
      reg0.gauge("sort.pool.peak_free").set(static_cast<double>(ps.peak_free));
      const PartitionStats& pt = stats_.partition;
      reg0.counter(std::string("sort.partition.scheme.") +
                   partition_scheme_name(pt.scheme))
          .inc(1);
      reg0.counter("sort.partition.rounds").inc(pt.rounds);
      reg0.counter("sort.partition.sample_keys").inc(pt.sample_keys);
      reg0.counter("sort.partition.probe_keys").inc(pt.probe_keys);
      reg0.gauge("sort.partition.groups")
          .set(static_cast<double>(pt.groups));
      reg0.gauge("sort.partition.achieved_epsilon")
          .set(pt.achieved_epsilon);
      if (cfg_.recovery.enabled) {
        const RecoveryStats& rc = stats_.recovery;
        reg0.counter("sort.recovery.recoveries").inc(rc.recoveries);
        reg0.counter("sort.recovery.regenerated_shards")
            .inc(rc.regenerated_shards);
        reg0.counter("sort.recovery.abort_broadcasts").inc(rc.abort_broadcasts);
        reg0.counter("sort.recovery.hedged_rerequests")
            .inc(rc.hedged_rerequests);
        reg0.counter("sort.recovery.hedged_chunks_resent")
            .inc(rc.hedged_chunks_resent);
        reg0.gauge("sort.recovery.wasted_work_ns")
            .set(static_cast<double>(rc.wasted_work_ns));
        reg0.gauge("sort.recovery.time_to_recover_max_ns")
            .set(static_cast<double>(rc.time_to_recover_max_ns));
      }
    }
  }

  const std::vector<std::vector<ItemT>>& partitions() const { return output_; }
  std::vector<std::vector<ItemT>>& mutable_partitions() { return output_; }
  const SortStats<Key>& stats() const { return stats_; }
  const SortConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  // Ranks that produced the final output; equals 0..p-1 unless a recovery
  // shrank the membership.
  const std::vector<std::size_t>& final_members() const {
    return final_members_;
  }
  // Exchange buffer-pool counters (shared across the simulated machines,
  // which live in one address space).
  const rt::BufferPoolStats& pool_stats() const { return pool_.stats(); }
  // Runtime wait-for graph counters (edges registered, detection passes,
  // peak simultaneously-blocked ranks) for the report's waits section.
  const sim::WaitGraph::Stats& wait_stats() const {
    return cluster_.wait_graph().stats();
  }

  // Per-rank telemetry (populated when SortConfig::telemetry is on).
  const obs::MetricsRegistry& metrics(std::size_t rank) const {
    return metrics_[rank];
  }
  const std::vector<obs::MetricsRegistry>& per_rank_metrics() const {
    return metrics_;
  }
  // Cluster-wide view: counters sum, gauges keep the max, histograms merge.
  obs::MetricsRegistry merged_metrics() const {
    return obs::merge_all(metrics_);
  }

  // Optional span tracing: each machine's step becomes a (lane, label,
  // begin, end, bytes) span — see sim::Trace::render_gantt and
  // obs::chrome_trace_json. Declares the cluster size as the lane count so
  // span-less ranks still show up, wires the comm layer to record one flow
  // edge per physical frame it lands (data, retransmit, duplicate, ack),
  // and names the engine tags so exports say "chunk", not "tag 3".
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (trace_) {
      trace_->set_lane_count(cluster_.size());
      trace_->name_tag(tag(kTagSamples), "samples");
      trace_->name_tag(tag(kTagSplitters), "splitters");
      trace_->name_tag(tag(kTagCounts), "counts");
      trace_->name_tag(tag(kTagData), "chunk");
      trace_->name_tag(tag(kTagCtrl), "ctrl");
      trace_->name_tag(tag(kTagProbe), "probe");
      trace_->name_tag(tag(kTagReply), "probe-reply");
      trace_->name_tag(tag(kTagL1Samples), "l1-samples");
      trace_->name_tag(tag(kTagGroupSplit), "group-splitters");
      trace_->name_tag(tag(kTagL1Counts), "l1-counts");
      trace_->name_tag(tag(kTagL1Data), "l1-bucket");
    }
    cluster_.comm().set_trace(trace);
  }

  // Optional time-series telemetry: registers this sorter's live probes —
  // per-rank mailbox depth, exchange BufferPool occupancy/outstanding
  // chunks, failure-detector suspicion — on the sampler and attaches it to
  // the cluster, which starts/stops its sampling loop around each run.
  // The probes observe `this` and the cluster: the sampler must not
  // outlive either while attached. nullptr detaches.
  void set_sampler(obs::TimeSeriesSampler* sampler) {
    if (sampler != nullptr) {
      auto& comm = cluster_.comm();
      for (std::size_t r = 0; r < cluster_.size(); ++r)
        sampler->add("rank" + std::to_string(r) + ".mailbox_depth",
                     [&comm, r] {
                       return static_cast<double>(comm.pending_total(r));
                     });
      sampler->add("pool.free_buffers", [this] {
        return static_cast<double>(pool_.free_buffers());
      });
      sampler->add("pool.outstanding_chunks", [this] {
        return static_cast<double>(pool_.outstanding());
      });
      sampler->add("waitgraph.blocked_ranks", [this] {
        return static_cast<double>(cluster_.wait_graph().blocked());
      });
      if (rt::FailureDetector* det = cluster_.detector())
        sampler->add("detector.suspected_pairs", [det] {
          return static_cast<double>(det->suspected_pair_count());
        });
    }
    cluster_.set_sampler(sampler);
  }

 private:
  // One sort attempt's membership: an ordered subset of the cluster's
  // physical ranks; members[0] is the master. The clean path runs attempt 0
  // over all p ranks. `scope` is the partitioning scope — the subset of
  // members steps (2)-(6) run over, with scope[0] as their master. It
  // equals `members` for the flat schemes; under kTwoLevelAms it shrinks to
  // this rank's group after the level-1 exchange. Aborts and the failure
  // detector always act on the full membership: any member's death dooms
  // the attempt, whichever group it sat in.
  struct AttemptCtx {
    int attempt = 0;
    std::vector<std::size_t> members;
    std::vector<std::size_t> scope;

    AttemptCtx() = default;
    AttemptCtx(int a, std::vector<std::size_t> m)
        : attempt(a), members(std::move(m)), scope(members) {}
    AttemptCtx(int a, std::vector<std::size_t> m, std::vector<std::size_t> s)
        : attempt(a), members(std::move(m)), scope(std::move(s)) {}
  };

  enum class AttemptOutcome { kNotRun, kOk, kCrashed, kAborted };

  // Sender-side state a rank exposes while its exchange window is open, so
  // it can service straggler re-requests against its still-live sorted
  // array. Pointers are only dereferenced between exchange start and
  // local.clear(); recv_sort receives nullptr outside that window.
  struct ExchangeState {
    const std::vector<Key>* local = nullptr;
    const PartitionPlan* plan = nullptr;
    // Two-hop (AMS) exchanges ship per-element origin provenance alongside
    // each chunk (see pack_prov); nullptr for the flat single-hop schemes.
    const std::vector<std::uint64_t>* lprov = nullptr;
    std::uint64_t chunk_elems = 0;
    bool use_pool = false;

    ExchangeState() = default;
  };

  // RAII annotation edge for the exchange's pool-backpressure park: the
  // edge must come off whether the wrapped receive completes or throws
  // (RankCrashedError / SortAbortedError unwind this coroutine frame), or
  // a stale pool edge would misname every later deadlock cycle.
  struct PoolWaitGuard {
    sim::WaitGraph* graph;
    std::size_t token;
    PoolWaitGuard(sim::WaitGraph* g, std::size_t t) : graph(g), token(t) {}
    PoolWaitGuard(const PoolWaitGuard&) = delete;
    PoolWaitGuard& operator=(const PoolWaitGuard&) = delete;
    ~PoolWaitGuard() {
      if (graph != nullptr) graph->end_wait(token);
    }
  };

  // Origin provenance packed into one u64 for the two-hop (AMS) path. The
  // level-1 exchange destroys the "contiguous slice of the sender's sorted
  // shard" property the flat exchange relies on, so the group exchange
  // carries each element's true origin explicitly: machine in the top 24
  // bits, index into the origin's locally sorted shard below. Shipped in
  // the chunk's counts plane as audit metadata — not counted as modeled
  // wire bytes, matching the provenance.hpp convention that provenance is
  // an audit artifact, not protocol payload.
  static constexpr std::uint64_t kProvIndexBits = 40;
  static std::uint64_t pack_prov(std::size_t machine, std::uint64_t index) {
    PGXD_CHECK(machine < (std::uint64_t{1} << (64 - kProvIndexBits)) &&
               index < (std::uint64_t{1} << kProvIndexBits));
    return (static_cast<std::uint64_t>(machine) << kProvIndexBits) | index;
  }
  static Provenance unpack_prov(std::uint64_t packed) {
    return Provenance{static_cast<std::uint32_t>(packed >> kProvIndexBits),
                      packed & ((std::uint64_t{1} << kProvIndexBits) - 1)};
  }

  // Receiver-side straggler tracking for the exchange: inter-chunk arrival
  // gaps feed a q95-based hedge deadline; the chunk-dedup bitmap tells us
  // exactly which chunks are still missing per source.
  struct RecvProgress {
    const std::vector<std::size_t>* seen_base = nullptr;     // member-indexed
    const std::vector<std::uint64_t>* seen_words = nullptr;
    const std::vector<std::uint64_t>* recv_counts = nullptr; // member-indexed
    std::uint64_t chunk_elems = 0;
    sim::SimTime last_arrival = 0;
    sim::SimTime last_hedge = 0;
    std::vector<sim::SimTime> gaps;

    RecvProgress() = default;
  };

  static constexpr std::size_t kHedgeMaxChunksPerSource = 8;
  static constexpr std::size_t kHedgeMinGapSamples = 8;
  static constexpr std::size_t kHedgeMaxGapSamples = 512;
  // Scope size above which the exchange-counts all-to-all is relayed
  // through the scope master as q-entry vectors instead of per-pair u64
  // messages (Step 4). Below it the per-pair path is both cheaper and the
  // paper's literal shape.
  static constexpr std::size_t kBatchedCountsScope = 64;
  // Scope size above which the exchange stops maintaining per-peer
  // mailbox hold edges (the wait-for graph's naming metadata): holds are
  // O(q) per rank, and a deadlock past this size is still detected and
  // reported, just without per-peer attribution.
  static constexpr std::size_t kWaitGraphHoldScope = 256;

  int tag(int t) const { return base_tag_ + t; }
  void note_control_bytes(std::uint64_t b) { wire_control_bytes_ += b; }
  void note_data_bytes(std::uint64_t b) { wire_data_bytes_ += b; }

  std::vector<Key> regenerate_shard(std::size_t rank) const {
    return shard_source_ ? shard_source_(rank) : input_[rank];
  }

  // Poll quantum for deadline-aware receives under recovery: explicit
  // config wins, else half the detector timeout (floored) so suspicion is
  // noticed within one or two polls of becoming observable.
  sim::SimTime poll_quantum() {
    if (cfg_.recovery.poll > 0) return cfg_.recovery.poll;
    if (rt::FailureDetector* det = cluster_.detector())
      return std::max<sim::SimTime>(det->config().timeout / 2,
                                    100 * sim::kMicrosecond);
    return sim::kMillisecond;
  }

  // pgxd-protocol: recovery-path
  // Everything down to the matching end marker runs (or can run) while
  // ranks are crashing: no plain blocking recv, no barrier, no unbounded
  // collective is allowed here — only try_recv / recv_until / plain posts.
  // tools/analyze_protocol.py enforces this.

  // Crash-recovery supervisor: run attempts over the live membership until
  // one completes with no member crashing mid-flight, regenerating dead
  // ranks' shards and re-running on the survivors after each failure.
  // Plays the role of the cluster scheduler / driver, hence host code.
  void run_recovering() {
    PGXD_CHECK_MSG(cfg_.async_exchange,
                   "recovery requires SortConfig::async_exchange (the "
                   "bulk-synchronous ablation's full-cluster barrier cannot "
                   "span a shrunk membership)");
    auto& comm = cluster_.comm();
    PGXD_CHECK_MSG(
        comm.reliable_config().enabled && comm.reliable_config().fail_fast,
        "recovery requires reliable fail-fast delivery "
        "(ClusterConfig::reliable.enabled + fail_fast)");
    PGXD_CHECK_MSG(cluster_.detector() != nullptr,
                   "recovery requires the failure detector "
                   "(ClusterConfig::detector.enabled)");
    PGXD_CHECK_MSG(cluster_.config().allow_undrained,
                   "recovery requires ClusterConfig::allow_undrained "
                   "(aborted attempts and hedged re-sends leave stray "
                   "frames behind by design)");
    recovery_active_ = true;
    auto& sim = cluster_.simulator();
    auto& fabric = cluster_.fabric();
    const std::size_t p = cluster_.size();
    const sim::SimTime run_start = sim.now();
    for (int attempt = 0;; ++attempt) {
      PGXD_CHECK_MSG(attempt <= cfg_.recovery.max_recoveries,
                     "unrecoverable sort: recovery budget exhausted "
                     "(max_recoveries consecutive attempts failed)");
      std::vector<std::size_t> members;
      for (std::size_t r = 0; r < p; ++r)
        if (!fabric.down(r, sim.now())) members.push_back(r);
      PGXD_CHECK_MSG(
          members.size() >= std::max<std::size_t>(cfg_.recovery.min_members, 1),
          "unrecoverable sort: surviving membership fell below "
          "RecoveryConfig::min_members");
      // Attempt inputs: each survivor keeps its own shard; dead ranks'
      // shards are deterministically regenerated and dealt round-robin to
      // the survivors (datagen seeds stand in for durable storage).
      attempt_input_.assign(p, {});
      for (std::size_t r : members) attempt_input_[r] = input_[r];
      std::size_t dead_seen = 0;
      for (std::size_t r = 0; r < p; ++r) {
        if (!fabric.down(r, sim.now())) continue;
        const std::size_t owner = members[dead_seen++ % members.size()];
        std::vector<Key> shard = regenerate_shard(r);
        attempt_input_[owner].insert(attempt_input_[owner].end(),
                                     shard.begin(), shard.end());
        ++stats_.recovery.regenerated_shards;
      }
      for (auto& part : output_) {
        part.clear();
        part.shrink_to_fit();
      }
      stats_.machines.assign(p, MachineStats{});
      outcomes_.assign(p, AttemptOutcome::kNotRun);
      abort_sent_.assign(p, 0);
      part_rounds_ = 1;
      part_probe_keys_ = 0;
      part_level1_items_ = 0;
      part_groups_ = 1;
      part_refine_eps_ = 0.0;
      const sim::SimTime t0 = sim.now();
      const sim::SimTime elapsed = cluster_.run_on(
          members, [this, attempt, &members](rt::Machine& m) {
            AttemptCtx ctx(attempt, members);
            return resilient_program(m, std::move(ctx));
          });
      const sim::SimTime t1 = sim.now();
      // Aborted attempts strand frames in mailboxes and their buffers with
      // them; a clean slate per attempt keeps chunk dedup and pool
      // backpressure honest.
      comm.drain_mailboxes();
      pool_.reconcile_after_drain();
      // Drained frames strand their pool-hold naming edges; with every
      // attempt program finished nothing is in flight, so all pool holds
      // are stale by construction.
      cluster_.wait_graph().clear_holds(sim::WaitResource::pool());
      bool failed = false;
      std::optional<sim::SimTime> first_crash;
      for (std::size_t r : members) {
        if (outcomes_[r] != AttemptOutcome::kOk) failed = true;
        // crashed_within catches crashes no coroutine observed (e.g. a
        // rank dying inside its final merge with all comm already done).
        if (const auto at = fabric.crashed_within(r, t0, t1)) {
          failed = true;
          if (!first_crash || *at < *first_crash) first_crash = *at;
        }
      }
      if (!failed) {
        stats_.recovery.final_attempt = attempt;
        stats_.recovery.final_members = members.size();
        final_members_ = members;
        recovery_active_ = false;
        attempt_input_.clear();
        finalize(sim.now() - run_start);
        return;
      }
      ++stats_.recovery.recoveries;
      stats_.recovery.wasted_work_ns +=
          elapsed * static_cast<sim::SimTime>(members.size());
      if (first_crash) {
        const sim::SimTime ttr = t1 - *first_crash;
        stats_.recovery.time_to_recover_total_ns += ttr;
        stats_.recovery.time_to_recover_max_ns =
            std::max(stats_.recovery.time_to_recover_max_ns, ttr);
      }
    }
  }

  // Crash-tolerant per-member program: translates the failure exceptions
  // into per-rank attempt outcomes so one rank's death never aborts the
  // whole simulation. Not a coroutine (GCC 12 pattern).
  sim::Task<void> resilient_program(rt::Machine& m, AttemptCtx ctx) {
    return resilient_program_impl(m, std::move(ctx));
  }

  sim::Task<void> resilient_program_impl(rt::Machine& m, AttemptCtx ctx) {
    const std::size_t rank = m.rank();
    std::size_t unreachable_peer = rank;
    try {
      AttemptCtx attempt_ctx = ctx;
      co_await sort_attempt(m, std::move(attempt_ctx));
      outcomes_[rank] = AttemptOutcome::kOk;
      co_return;
    } catch (const rt::RankCrashedError&) {
      outcomes_[rank] = AttemptOutcome::kCrashed;
      co_return;
    } catch (const rt::SortAbortedError&) {
      outcomes_[rank] = AttemptOutcome::kAborted;
      co_return;
    } catch (const rt::PeerUnreachableError& e) {
      // This rank noticed the failure through a failed send before the
      // detector did; fan the abort out so the other survivors stop too.
      // (No co_await is legal in a catch handler; abort_attempt only posts.)
      outcomes_[rank] = AttemptOutcome::kAborted;
      unreachable_peer = e.dst();
    }
    abort_attempt(ctx, rank, unreachable_peer);
  }

  // Not a coroutine (GCC 12 pattern).
  sim::Task<void> sort_attempt(rt::Machine& m, AttemptCtx ctx) {
    return sort_attempt_impl(m, std::move(ctx));
  }

  // Fans the abort decision out to the other members (once per rank per
  // attempt) so every survivor abandons the attempt within one poll
  // quantum. Plain posts — safe to call from exception handlers.
  void abort_attempt(const AttemptCtx& ctx, std::size_t rank,
                     std::size_t dead) {
    if (!abort_sent_.empty() && abort_sent_[rank] != 0) return;
    if (!abort_sent_.empty()) abort_sent_[rank] = 1;
    if (cluster_.fabric().down(rank, cluster_.simulator().now()))
      return;  // a crashed rank cannot fan out
    ++stats_.recovery.abort_broadcasts;
    for (std::size_t peer : ctx.members) {
      if (peer == rank) continue;
      std::vector<std::uint64_t> c;
      c.push_back(kCtrlAbort);
      c.push_back(static_cast<std::uint64_t>(ctx.attempt));
      c.push_back(dead);
      const std::uint64_t bytes = c.size() * sizeof(std::uint64_t);
      note_control_bytes(bytes);
      Msg msg = Msg::of_counts(std::move(c));
      cluster_.comm().post(rank, peer, tag(kTagCtrl), std::move(msg), bytes);
    }
  }

  // Drains this rank's control mailbox: abort frames raise SortAbortedError;
  // straggler re-requests are serviced when the rank's exchange window is
  // open (xs != nullptr), else dropped — the requester's reliable-layer
  // retransmissions still deliver the original chunks.
  sim::Task<void> service_ctrl(rt::Machine& m, const AttemptCtx& ctx,
                               const ExchangeState* xs) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    for (;;) {
      std::optional<Envelope> c = comm.try_recv(rank, tag(kTagCtrl));
      if (!c) co_return;
      PGXD_CHECK_MSG(!c->payload.counts.empty(),
                     "empty control frame in the sort's ctrl mailbox");
      const std::uint64_t kind = c->payload.counts[0];
      if (kind == kCtrlAbort) {
        throw rt::SortAbortedError("abort frame from rank " +
                                   std::to_string(c->src));
      }
      if (kind == kCtrlReRequest && xs != nullptr) {
        co_await resend_chunks(m, ctx, *c, *xs);
      }
    }
  }

  // Re-sends the requested exchange chunks to a straggling receiver from
  // this rank's still-live sorted array. Duplicates are harmless: the
  // receiver's chunk-dedup bitmap drops whichever copy arrives second.
  sim::Task<void> resend_chunks(rt::Machine& m, const AttemptCtx& ctx,
                                const Envelope& req, const ExchangeState& xs) {
    const std::size_t requester = req.src;
    // The exchange plan is indexed over the partition scope, not the full
    // membership (they differ under kTwoLevelAms).
    const std::size_t q = ctx.scope.size();
    std::size_t j = q;
    for (std::size_t k = 0; k < q; ++k)
      if (ctx.scope[k] == requester) j = k;
    if (j == q) co_return;  // not in this rank's scope: stale frame
    const std::size_t lo = xs.plan->bounds[j];
    const std::size_t hi = xs.plan->bounds[j + 1];
    for (std::size_t i = 2; i < req.payload.counts.size(); ++i) {
      const std::uint64_t cidx = req.payload.counts[i];
      const std::size_t at =
          lo + static_cast<std::size_t>(cidx * xs.chunk_elems);
      if (at >= hi) continue;  // malformed or stale index: ignore
      const std::size_t take = std::min<std::uint64_t>(
          hi - at, xs.chunk_elems);
      std::vector<Key> chunk =
          xs.use_pool ? pool_.acquire(take) : std::vector<Key>();
      chunk.reserve(take);
      chunk.assign(xs.local->begin() + static_cast<std::ptrdiff_t>(at),
                   xs.local->begin() + static_cast<std::ptrdiff_t>(at + take));
      const std::uint64_t bytes = take * kDataWireBytesPerKey +
                                  kChunkHeaderBytes;
      note_data_bytes(bytes);
      ++stats_.recovery.hedged_chunks_resent;
      co_await m.charge_copy(take);
      std::vector<std::uint64_t> pchunk;
      if (xs.lprov != nullptr)
        pchunk.assign(
            xs.lprov->begin() + static_cast<std::ptrdiff_t>(at),
            xs.lprov->begin() + static_cast<std::ptrdiff_t>(at + take));
      Msg out(std::move(chunk), std::move(pchunk), at, at - lo);
      cluster_.comm().post(m.rank(), requester, tag(kTagData), std::move(out),
                           bytes);
    }
  }

  // Quantile-based hedge deadline: 4x (configurable) the q95 inter-chunk
  // arrival gap once enough samples exist, floored so a quiet start never
  // triggers spurious re-requests.
  sim::SimTime hedge_deadline(const RecvProgress& rp) const {
    sim::SimTime d = cfg_.recovery.hedge_floor;
    if (rp.gaps.size() >= kHedgeMinGapSamples) {
      std::vector<sim::SimTime> tmp(rp.gaps);
      const std::size_t k = (tmp.size() * 95) / 100;
      std::nth_element(tmp.begin(),
                       tmp.begin() + static_cast<std::ptrdiff_t>(k),
                       tmp.end());
      const auto scaled = static_cast<sim::SimTime>(
          static_cast<double>(tmp[k]) * cfg_.recovery.hedge_multiplier);
      d = std::max(d, scaled);
    }
    return d;
  }

  // When the exchange has gone quiet past the hedge deadline with chunks
  // still missing, re-request them (derived from the dedup bitmap's unset
  // bits) from each lagging source. Rate-limited by the same deadline so a
  // stalled receive loop does not spam the fabric.
  void maybe_hedge(rt::Machine& m, const AttemptCtx& ctx, RecvProgress& rp) {
    if (!cfg_.recovery.hedge_rerequests) return;
    auto& sim = cluster_.simulator();
    const sim::SimTime now = sim.now();
    const sim::SimTime deadline = hedge_deadline(rp);
    if (now - rp.last_arrival < deadline) return;
    if (rp.last_hedge != 0 && now - rp.last_hedge < deadline) return;
    rp.last_hedge = now;
    const std::size_t rank = m.rank();
    const std::size_t q = ctx.scope.size();
    std::size_t idx = q;
    for (std::size_t j = 0; j < q; ++j)
      if (ctx.scope[j] == rank) idx = j;
    for (std::size_t j = 0; j < q; ++j) {
      if (j == idx) continue;
      const std::uint64_t cnt = (*rp.recv_counts)[j];
      if (cnt == 0) continue;
      const std::uint64_t nchunks =
          rp.chunk_elems == std::numeric_limits<std::uint64_t>::max()
              ? 1
              : (cnt + rp.chunk_elems - 1) / rp.chunk_elems;
      std::vector<std::uint64_t> missing;
      for (std::uint64_t c = 0;
           c < nchunks && missing.size() < kHedgeMaxChunksPerSource; ++c) {
        const std::size_t word =
            (*rp.seen_base)[j] + static_cast<std::size_t>(c / 64);
        const std::uint64_t bit = std::uint64_t{1} << (c % 64);
        if (((*rp.seen_words)[word] & bit) == 0) missing.push_back(c);
      }
      if (missing.empty()) continue;
      std::vector<std::uint64_t> req;
      req.reserve(2 + missing.size());
      req.push_back(kCtrlReRequest);
      req.push_back(static_cast<std::uint64_t>(ctx.attempt));
      req.insert(req.end(), missing.begin(), missing.end());
      const std::uint64_t bytes = req.size() * sizeof(std::uint64_t);
      note_control_bytes(bytes);
      ++stats_.recovery.hedged_rerequests;
      Msg msg = Msg::of_counts(std::move(req));
      cluster_.comm().post(rank, ctx.scope[j], tag(kTagCtrl),
                           std::move(msg), bytes);
    }
  }
  // pgxd-protocol: end-recovery-path

  // The sort's one receive primitive. Clean path (recovery off): a plain
  // blocking recv, byte-identical to the pre-recovery sorter. Recovery
  // path: a bounded poll loop that (a) dies promptly if this rank crashed,
  // (b) services control frames (aborts, straggler re-requests), (c) turns
  // failure-detector suspicion of any member into an attempt abort, and
  // (d) hedges exchange re-requests when progress stalls.
  sim::Task<Envelope> recv_sort(rt::Machine& m, const AttemptCtx& ctx, int tg,
                                const ExchangeState* xs, RecvProgress* rp) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    if (!recovery_active_) {
      Envelope v = co_await comm.recv(rank, tg);
      co_return v;
    }
    // pgxd-protocol: recovery-path
    auto& sim = cluster_.simulator();
    rt::FailureDetector* det = cluster_.detector();
    const sim::SimTime poll = poll_quantum();
    for (;;) {
      comm.throw_if_crashed(rank);
      co_await service_ctrl(m, ctx, xs);
      if (det != nullptr) {
        const auto dead = det->first_suspected(rank, ctx.members);
        if (dead) {
          abort_attempt(ctx, rank, *dead);
          throw rt::SortAbortedError("rank " + std::to_string(*dead) +
                                     " suspected crashed");
        }
      }
      const sim::SimTime deadline = sim.now() + poll;
      auto got = co_await comm.recv_until(rank, tg, deadline);
      if (got) {
        if (rp != nullptr) {
          const sim::SimTime gap = sim.now() - rp->last_arrival;
          rp->last_arrival = sim.now();
          if (gap > 0 && rp->gaps.size() < kHedgeMaxGapSamples)
            rp->gaps.push_back(gap);
        }
        co_return std::move(*got);
      }
      if (rp != nullptr) maybe_hedge(m, ctx, *rp);
    }
    // pgxd-protocol: end-recovery-path
  }

  // Per-rank regular-sample budget (Sec. IV-B): X = read_buffer / q bytes,
  // scaled by sample_factor. kHistogramRefine seeds from a deliberately
  // smaller sample and buys the precision back with refinement rounds —
  // that is its whole sample-volume advantage.
  std::uint64_t sample_budget(std::size_t q, std::size_t n,
                              bool histogram) const {
    const std::uint64_t x_bytes =
        std::max<std::uint64_t>(1, cfg_.read_buffer_bytes / q);
    auto count = static_cast<std::uint64_t>(
        static_cast<double>(x_bytes) * cfg_.sample_factor /
        static_cast<double>(sizeof(Key)));
    if (histogram)
      count =
          std::max<std::uint64_t>(2, count / sort::kHistogramSampleDivisor);
    return std::clamp<std::uint64_t>(count, 1, std::max<std::size_t>(n, 1));
  }

  // Master side of kHistogramRefine (Histogram Sort with Sampling): seed
  // candidates from the small sample gather, then alternate counting rounds
  // (exact global rank brackets for the probe set, summed over all members)
  // and draw rounds (fresh candidates from inside the still-unresolved
  // brackets) until every splitter boundary is certified within the epsilon
  // target or the round budget is spent. Ends by releasing the members and
  // broadcasting the final splitters on kTagSplitters, exactly like the
  // one-shot scheme — steps (4)-(6) never know which scheme ran.
  sim::Task<void> refine_splitters(rt::Machine& m, const AttemptCtx& ctx,
                                   const std::vector<Key>& local,
                                   const std::vector<Key>& samples,
                                   std::size_t n) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const std::size_t q = ctx.scope.size();
    std::vector<std::size_t> midx(p, q);
    for (std::size_t j = 0; j < q; ++j) midx[ctx.scope[j]] = j;
    const std::size_t idx = midx[rank];
    auto& mem = m.memory();

    // Seed: gather the sample pool and learn the exact total element count
    // from the piggybacked shard sizes (the refiner's targets need N, not
    // an estimate).
    std::vector<sort::WeightedSample<Key>> pool;
    std::uint64_t total_n = n;
    auto add_samples = [&pool](const std::vector<Key>& keys,
                               std::uint64_t shard_n) {
      if (keys.empty()) return;
      const double w =
          static_cast<double>(shard_n) / static_cast<double>(keys.size());
      for (const auto& k : keys)
        pool.push_back(sort::WeightedSample<Key>{k, w});
    };
    add_samples(samples, n);
    std::vector<bool> sampled(q, false);
    sampled[idx] = true;
    for (std::size_t distinct = 1; distinct < q;) {
      auto msg = co_await recv_sort(m, ctx, tag(kTagSamples), nullptr,
                                    nullptr);
      const std::size_t sj = midx[msg.src];
      PGXD_CHECK_MSG(sj < q,
                     "samples from a rank outside the attempt membership");
      if (sampled[sj]) continue;
      sampled[sj] = true;
      ++distinct;
      total_n += msg.payload.prov_base;
      add_samples(msg.payload.keys, msg.payload.prov_base);
    }
    std::vector<Key> cands;
    {
      rt::TempAlloc pool_mem(mem, pool.size() * sizeof(Key) * 2);
      std::sort(pool.begin(), pool.end(),
                [this](const sort::WeightedSample<Key>& a,
                       const sort::WeightedSample<Key>& b) {
                  return comp_(a.key, b.key);
                });
      co_await m.compute_parallel(m.cost().sort_time(pool.size()));
      cands = sort::select_splitters_weighted<Key, Comp>(pool, q, comp_);
    }

    sort::HistogramRefiner<Key, Comp> refiner(q, total_n,
                                              cfg_.partition_epsilon, comp_);
    std::vector<Key> probe = refiner.seed(std::move(cands));
    const auto max_rounds =
        static_cast<std::size_t>(cfg_.partition_max_rounds);
    std::uint64_t seq = 0;
    while (!refiner.done() && !probe.empty() &&
           refiner.rounds() < max_rounds) {
      // Counting round: broadcast the probe set; everyone (including us)
      // contributes exact local rank brackets, summed into global ones.
      ++seq;
      for (std::size_t j = 1; j < q; ++j) {
        std::vector<std::uint64_t> hdr;
        hdr.push_back(kProbeCount);
        hdr.push_back(seq);
        std::vector<Key> req_keys = probe;
        const std::uint64_t bytes = req_keys.size() * sizeof(Key) +
                                    hdr.size() * sizeof(std::uint64_t);
        note_control_bytes(bytes);
        Msg req(std::move(req_keys), std::move(hdr), 0, 0);
        comm.post(rank, ctx.scope[j], tag(kTagProbe), std::move(req), bytes);
      }
      std::vector<std::uint64_t> lo, hi;
      sort::count_ranks<Key, Comp>(local, probe, lo, hi, comp_);
      co_await m.compute(m.cost().histogram_round_time(n, probe.size()));
      std::vector<bool> replied(q, false);
      replied[idx] = true;
      for (std::size_t distinct = 1; distinct < q;) {
        auto msg = co_await recv_sort(m, ctx, tag(kTagReply), nullptr,
                                      nullptr);
        const std::size_t sj = midx[msg.src];
        PGXD_CHECK_MSG(sj < q,
                       "probe reply from a rank outside the membership");
        const auto& c = msg.payload.counts;
        if (c.empty() || c[0] != seq) continue;  // stale round: drop
        if (replied[sj]) continue;
        PGXD_CHECK_MSG(c.size() == 1 + 2 * probe.size(),
                       "probe reply does not match the probe set");
        replied[sj] = true;
        ++distinct;
        for (std::size_t i = 0; i < probe.size(); ++i) {
          lo[i] += c[1 + i];
          hi[i] += c[1 + probe.size() + i];
        }
      }
      refiner.absorb_counts(lo, hi);
      if (refiner.done() || refiner.rounds() >= max_rounds) break;
      // Draw round: fresh candidates strictly inside the unresolved
      // brackets, from every member.
      const std::vector<sort::RefineInterval<Key>> ivs =
          refiner.draw_intervals();
      if (ivs.empty()) break;
      ++seq;
      std::vector<Key> ser;
      std::vector<std::uint64_t> flags;
      for (const auto& iv : ivs) {
        ser.push_back(iv.has_lo ? iv.lo : Key{});
        ser.push_back(iv.has_hi ? iv.hi : Key{});
        flags.push_back((iv.has_lo ? 1u : 0u) | (iv.has_hi ? 2u : 0u));
      }
      for (std::size_t j = 1; j < q; ++j) {
        std::vector<std::uint64_t> hdr;
        hdr.push_back(kProbeDraw);
        hdr.push_back(seq);
        hdr.insert(hdr.end(), flags.begin(), flags.end());
        std::vector<Key> req_keys = ser;
        const std::uint64_t bytes = req_keys.size() * sizeof(Key) +
                                    hdr.size() * sizeof(std::uint64_t);
        note_control_bytes(bytes);
        Msg req(std::move(req_keys), std::move(hdr), 0, 0);
        comm.post(rank, ctx.scope[j], tag(kTagProbe), std::move(req), bytes);
      }
      std::vector<Key> drawn = sort::draw_candidates<Key, Comp>(
          local, ivs, sort::kDrawPerInterval, comp_);
      co_await m.charge_binary_search(n, 2 * ivs.size());
      std::vector<bool> drew(q, false);
      drew[idx] = true;
      for (std::size_t distinct = 1; distinct < q;) {
        auto msg = co_await recv_sort(m, ctx, tag(kTagReply), nullptr,
                                      nullptr);
        const std::size_t sj = midx[msg.src];
        PGXD_CHECK_MSG(sj < q,
                       "draw reply from a rank outside the membership");
        const auto& c = msg.payload.counts;
        if (c.empty() || c[0] != seq) continue;  // stale round: drop
        if (drew[sj]) continue;
        drew[sj] = true;
        ++distinct;
        drawn.insert(drawn.end(), msg.payload.keys.begin(),
                     msg.payload.keys.end());
      }
      probe = refiner.absorb_draws(std::move(drawn));
    }
    part_rounds_ = std::max<std::uint64_t>(1, refiner.rounds());
    part_probe_keys_ += refiner.probe_keys();
    part_refine_eps_ = refiner.achieved_epsilon();

    // Resolution round: the refiner certifies a boundary by a key whose
    // duplicate run *brackets* the target rank — landing on that rank
    // exactly means splitting the run by count, which no downstream
    // consumer can derive from the key alone (the investigator splits dup
    // runs heuristically, forfeiting the certified epsilon on dup-heavy
    // data). One more exact counting round over the final splitter keys,
    // kept per member this time, lets the master hand every member its
    // duplicate take per boundary; the takes ride with the splitters.
    splitters_ = refiner.splitters();
    const std::size_t nb = splitters_.size();
    std::vector<std::vector<std::uint64_t>> mem_lo(q), mem_hi(q);
    if (nb > 0) {
      ++seq;
      for (std::size_t j = 1; j < q; ++j) {
        std::vector<std::uint64_t> hdr;
        hdr.push_back(kProbeCount);
        hdr.push_back(seq);
        std::vector<Key> req_keys = splitters_;
        const std::uint64_t bytes = req_keys.size() * sizeof(Key) +
                                    hdr.size() * sizeof(std::uint64_t);
        note_control_bytes(bytes);
        Msg req(std::move(req_keys), std::move(hdr), 0, 0);
        comm.post(rank, ctx.scope[j], tag(kTagProbe), std::move(req), bytes);
      }
      sort::count_ranks<Key, Comp>(local, splitters_, mem_lo[idx],
                                   mem_hi[idx], comp_);
      co_await m.compute(m.cost().histogram_round_time(n, nb));
      std::vector<bool> replied(q, false);
      replied[idx] = true;
      for (std::size_t distinct = 1; distinct < q;) {
        auto msg = co_await recv_sort(m, ctx, tag(kTagReply), nullptr,
                                      nullptr);
        const std::size_t sj = midx[msg.src];
        PGXD_CHECK_MSG(sj < q,
                       "probe reply from a rank outside the membership");
        const auto& c = msg.payload.counts;
        if (c.empty() || c[0] != seq) continue;  // stale round: drop
        if (replied[sj]) continue;
        PGXD_CHECK_MSG(c.size() == 1 + 2 * nb,
                       "resolution reply does not match the splitter set");
        replied[sj] = true;
        ++distinct;
        mem_lo[sj].assign(c.begin() + 1,
                          c.begin() + 1 + static_cast<std::ptrdiff_t>(nb));
        mem_hi[sj].assign(c.begin() + 1 + static_cast<std::ptrdiff_t>(nb),
                          c.end());
      }
      part_probe_keys_ += nb;
    }
    // Boundary i lands at global rank r = clamp(target, sum lo, sum hi);
    // members contribute their duplicates in member order until r is met.
    // For equal splitter keys r is non-decreasing in i over the same
    // bracket, so per-member takes are monotone and bounds stay sorted.
    std::vector<std::vector<std::uint64_t>> takes(
        q, std::vector<std::uint64_t>(nb, 0));
    std::uint64_t worst_err = 0;
    for (std::size_t i = 0; i < nb; ++i) {
      std::uint64_t glo = 0, ghi = 0;
      for (std::size_t j = 0; j < q; ++j) {
        glo += mem_lo[j][i];
        ghi += mem_hi[j][i];
      }
      const std::uint64_t t = refiner.target(i);
      const std::uint64_t r = std::clamp(t, glo, ghi);
      worst_err = std::max(worst_err, r > t ? r - t : t - r);
      std::uint64_t need = r - glo;
      for (std::size_t j = 0; j < q && need > 0; ++j) {
        const std::uint64_t d =
            std::min<std::uint64_t>(mem_hi[j][i] - mem_lo[j][i], need);
        takes[j][i] = d;
        need -= d;
      }
    }
    if (nb > 0 && total_n > 0)
      part_refine_eps_ = 2.0 * static_cast<double>(q) *
                         static_cast<double>(worst_err) /
                         static_cast<double>(total_n);
    if (cfg_.telemetry) {
      obs::MetricsRegistry& mreg = metrics_[rank];
      mreg.counter("sort.partition.refine_rounds").inc(refiner.rounds());
      mreg.gauge("sort.partition.certified_epsilon").set(part_refine_eps_);
    }
    // Release the members from their service loops, then broadcast the
    // final splitters exactly like the one-shot scheme — plus each
    // member's dup-take vector in the counts plane.
    ++seq;
    for (std::size_t j = 1; j < q; ++j) {
      std::vector<std::uint64_t> hdr;
      hdr.push_back(kProbeDone);
      hdr.push_back(seq);
      const std::uint64_t bytes = hdr.size() * sizeof(std::uint64_t);
      note_control_bytes(bytes);
      comm.post(rank, ctx.scope[j], tag(kTagProbe),
                Msg::of_counts(std::move(hdr)), bytes);
    }
    for (std::size_t j = 0; j < q; ++j) {
      const std::size_t dst = ctx.scope[j];
      const std::uint64_t bytes =
          splitters_.size() * sizeof(Key) +
          takes[j].size() * sizeof(std::uint64_t);
      if (dst != rank) note_control_bytes(bytes);
      Msg smsg(std::vector<Key>(splitters_), std::move(takes[j]), 0, 0);
      comm.post(rank, dst, tag(kTagSplitters), std::move(smsg), bytes);
    }
    co_return;
  }

  // Member side of kHistogramRefine: answer the master's counting and draw
  // requests in lockstep until the done frame arrives. Requests carry a
  // sequence number so a duplicating fabric's redelivered requests are
  // dropped instead of answered twice (the master additionally dedups
  // replies by source and sequence).
  sim::Task<void> serve_refinement(rt::Machine& m, const AttemptCtx& ctx,
                                   const std::vector<Key>& local,
                                   std::size_t n) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t master = ctx.scope[0];
    std::uint64_t last_seq = 0;
    for (;;) {
      auto req = co_await recv_sort(m, ctx, tag(kTagProbe), nullptr, nullptr);
      PGXD_CHECK_MSG(req.src == master && req.payload.counts.size() >= 2,
                     "malformed histogram probe frame");
      const std::uint64_t op = req.payload.counts[0];
      const std::uint64_t seq = req.payload.counts[1];
      if (op == kProbeDone) co_return;
      if (seq <= last_seq) continue;  // duplicating fabric: stale copy
      last_seq = seq;
      if (op == kProbeCount) {
        const std::vector<Key>& probes = req.payload.keys;
        std::vector<std::uint64_t> lo, hi;
        sort::count_ranks<Key, Comp>(local, probes, lo, hi, comp_);
        co_await m.compute(m.cost().histogram_round_time(n, probes.size()));
        std::vector<std::uint64_t> reply;
        reply.reserve(1 + 2 * probes.size());
        reply.push_back(seq);
        reply.insert(reply.end(), lo.begin(), lo.end());
        reply.insert(reply.end(), hi.begin(), hi.end());
        const std::uint64_t bytes = reply.size() * sizeof(std::uint64_t);
        note_control_bytes(bytes);
        comm.post(rank, master, tag(kTagReply),
                  Msg::of_counts(std::move(reply)), bytes);
      } else {
        PGXD_CHECK_MSG(op == kProbeDraw, "unknown histogram probe op");
        const std::vector<Key>& ser = req.payload.keys;
        PGXD_CHECK(ser.size() % 2 == 0 &&
                   req.payload.counts.size() == 2 + ser.size() / 2);
        std::vector<sort::RefineInterval<Key>> ivs(ser.size() / 2);
        for (std::size_t i = 0; i < ivs.size(); ++i) {
          const std::uint64_t f = req.payload.counts[2 + i];
          ivs[i].lo = ser[2 * i];
          ivs[i].hi = ser[2 * i + 1];
          ivs[i].has_lo = (f & 1) != 0;
          ivs[i].has_hi = (f & 2) != 0;
        }
        std::vector<Key> drawn = sort::draw_candidates<Key, Comp>(
            local, ivs, sort::kDrawPerInterval, comp_);
        co_await m.charge_binary_search(n, 2 * ivs.size());
        std::vector<std::uint64_t> hdr;
        hdr.push_back(seq);
        const std::uint64_t bytes =
            drawn.size() * sizeof(Key) + sizeof(std::uint64_t);
        note_control_bytes(bytes);
        Msg reply(std::move(drawn), std::move(hdr), 0, 0);
        comm.post(rank, master, tag(kTagReply), std::move(reply), bytes);
      }
    }
  }

  // One member's pipeline for one attempt, in member-index space: all
  // per-source bookkeeping is indexed 0..q-1 over ctx.members; provenance
  // and endpoints stay in physical rank space.
  sim::Task<void> sort_attempt_impl(rt::Machine& m, AttemptCtx ctx) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const std::size_t q = ctx.members.size();
    const std::size_t master = ctx.members[0];
    // Physical rank -> member index (q = not a member of this attempt).
    std::vector<std::size_t> midx(p, q);
    for (std::size_t j = 0; j < q; ++j) midx[ctx.members[j]] = j;
    const std::size_t idx = midx[rank];
    PGXD_CHECK_MSG(idx < q, "sort attempt spawned on a non-member rank");
    auto& sim = cluster_.simulator();
    auto& mem = m.memory();
    MachineStats& ms = stats_.machines[rank];
    obs::MetricsRegistry& reg = metrics_[rank];
    const bool telemetry = cfg_.telemetry;
    sim::SimTime mark = sim.now();
    // Closes the current paper step: per-step timing, a trace span tagged
    // with the bytes the step moved, and (telemetry on) a step-duration
    // gauge in the rank's registry. Accumulating (+=) because the two-level
    // scheme visits the sampling..exchange steps twice — once per level.
    auto stamp = [&](Step s, std::uint64_t bytes = 0) {
      ms.steps[s] += sim.now() - mark;
      if (trace_) trace_->record(rank, step_name(s), mark, sim.now(), bytes);
      if (telemetry) {
        reg.gauge(std::string("sort.step.") + step_metric_suffix(s) + "_ns")
            .set(static_cast<double>(ms.steps[s]));
        reg.counter(std::string("sort.step.") + step_metric_suffix(s) +
                    "_bytes")
            .inc(bytes);
      }
      mark = sim.now();
    };

    // ---- Step 1: local sort ------------------------------------------------
    // Provenance convention: an element's previous location is its position
    // in its previous machine's *locally sorted* sequence (what the
    // exchange actually ships; receivers reconstruct indices from chunk
    // offsets, so provenance never rides the wire).
    const std::vector<Key>& shard =
        recovery_active_ ? attempt_input_[rank] : input_[rank];
    const std::size_t n = shard.size();
    std::vector<Key> local = shard;
    {
      // Scratch for the in-node sort (the Fig. 2 ping-pong buffer / radix
      // scatter buffer).
      rt::TempAlloc scratch_mem(mem, n * sizeof(Key));
      const sort::LocalSortStats ls =
          sort::local_sort(local, cfg_.local_sort, comp_);
      if (ls.used_radix) {
        co_await m.charge_local_radix_sort(n, ls.radix_passes);
        if (telemetry) {
          reg.counter("sort.local.radix_sorts").inc(1);
          reg.counter("sort.local.radix_passes").inc(ls.radix_passes);
        }
      } else {
        co_await m.charge_local_parallel_sort(n);
      }
    }
    if (telemetry) reg.counter("sort.local.items").inc(n);
    stamp(Step::kLocalSort, n * sizeof(Key));

    // ---- Partition scope ----------------------------------------------------
    // Flat schemes partition once over the whole membership. kTwoLevelAms
    // first routes whole key buckets between ~sqrt(q) contiguous rank
    // groups (level 1: one partner per foreign group, so per-rank fan-out
    // is ~sqrt(q) instead of q), then runs steps (2)-(6) within this rank's
    // group. Group contiguity plus the ordered coarse splitters keep the
    // global output sorted in rank order.
    std::vector<std::size_t> scope = ctx.members;
    // After a level-1 exchange, elements of `local` originate from other
    // ranks' shards: `lprov[i]` records element i's true origin (pack_prov)
    // so the group exchange can ship it and the final provenance — and the
    // exactly-once audit — still point at original shard positions.
    std::vector<std::uint64_t> lprov;
    bool two_hop = false;
    if (cfg_.partition == PartitionScheme::kTwoLevelAms) {
      const sort::AmsLayout layout = sort::ams_layout(q);
      part_groups_ = layout.groups;
      if (layout.groups > 1) {
        const std::size_t g_me = layout.group_of(idx);

        // Level-1 sampling: the same regular-sample machinery, but the
        // master only needs groups-1 coarse splitters out of it.
        const std::uint64_t l1_sample_count =
            sample_budget(q, n, /*histogram=*/false);
        std::vector<Key> samples =
            sort::regular_samples<Key>(local, l1_sample_count);
        ms.sample_count += samples.size();
        co_await m.charge_copy(samples.size());
        if (rank != master) {
          // prov_base carries the shard size so the master can weight
          // samples from unequal shards.
          const std::uint64_t bytes = samples.size() * sizeof(Key);
          note_control_bytes(bytes);
          co_await comm.send(rank, master, tag(kTagL1Samples),
                             Msg::of_data(samples, n, 0), bytes);
        }
        if (telemetry)
          reg.counter("sort.sampling.samples").inc(samples.size());
        stamp(Step::kSampling, samples.size() * sizeof(Key));

        std::vector<Key> gsplit;
        if (rank == master) {
          std::vector<sort::WeightedSample<Key>> gpool;
          auto add_samples = [&gpool](const std::vector<Key>& keys,
                                      std::uint64_t shard_n) {
            if (keys.empty()) return;
            const double w = static_cast<double>(shard_n) /
                             static_cast<double>(keys.size());
            for (const auto& k : keys)
              gpool.push_back(sort::WeightedSample<Key>{k, w});
          };
          add_samples(samples, n);
          std::vector<bool> sampled(q, false);
          sampled[idx] = true;
          for (std::size_t distinct = 1; distinct < q;) {
            auto msg = co_await recv_sort(m, ctx, tag(kTagL1Samples), nullptr,
                                          nullptr);
            const std::size_t sj = midx[msg.src];
            PGXD_CHECK_MSG(sj < q, "level-1 samples from a rank outside the "
                                   "attempt membership");
            if (sampled[sj]) continue;
            sampled[sj] = true;
            ++distinct;
            add_samples(msg.payload.keys, msg.payload.prov_base);
          }
          {
            rt::TempAlloc pool_mem(mem, gpool.size() * sizeof(Key) * 2);
            std::sort(gpool.begin(), gpool.end(),
                      [this](const sort::WeightedSample<Key>& a,
                             const sort::WeightedSample<Key>& b) {
                        return comp_(a.key, b.key);
                      });
            co_await m.compute_parallel(m.cost().sort_time(gpool.size()));
            gsplit = sort::select_splitters_weighted<Key, Comp>(
                gpool, layout.groups, comp_);
          }
          for (std::size_t j = 0; j < q; ++j) {
            const std::size_t dst = ctx.members[j];
            const std::uint64_t bytes = gsplit.size() * sizeof(Key);
            if (dst != master) note_control_bytes(bytes);
            comm.post(master, dst, tag(kTagGroupSplit), Msg::of_keys(gsplit),
                      bytes);
          }
        }
        auto gmsg = co_await recv_sort(m, ctx, tag(kTagGroupSplit), nullptr,
                                       nullptr);
        gsplit = std::move(gmsg.payload.keys);
        stamp(Step::kSplitterSelect, gsplit.size() * sizeof(Key));

        // Level-1 plan: one bucket per group, with the duplicate-splitter
        // investigator balancing duplicate runs across group boundaries.
        PartitionPlan gplan = plan_partition<Key, Comp>(
            local, gsplit, cfg_.use_investigator, comp_);
        ms.searches += gplan.searches;
        ms.duplicate_groups += gplan.duplicate_groups;
        co_await m.charge_binary_search(n, gplan.searches);

        // Announce bucket sizes: a single u64 to each foreign group's
        // partner. Receivers derive their expected sender set from the
        // layout alone, so zero-sized buckets still need the frame.
        const std::vector<std::uint64_t> gsizes = plan_sizes(gplan);
        for (std::size_t g = 0; g < layout.groups; ++g) {
          if (g == g_me) continue;
          const std::size_t dst = ctx.members[layout.partner(idx, g)];
          std::vector<std::uint64_t> one;
          one.push_back(gsizes[g]);
          const std::uint64_t bytes = sizeof(std::uint64_t);
          note_control_bytes(bytes);
          comm.post(rank, dst, tag(kTagL1Counts),
                    Msg::of_counts(std::move(one)), bytes);
        }
        std::vector<std::size_t> senders;
        for (std::size_t k = 0; k < q; ++k)
          if (layout.group_of(k) != g_me && layout.partner(k, g_me) == idx)
            senders.push_back(k);
        std::vector<std::uint64_t> bucket_n(q, 0);
        bucket_n[idx] = gsizes[g_me];
        {
          std::vector<bool> counted(q, false);
          for (std::size_t got = 0; got < senders.size();) {
            auto msg = co_await recv_sort(m, ctx, tag(kTagL1Counts), nullptr,
                                          nullptr);
            PGXD_CHECK(msg.payload.counts.size() == 1);
            const std::size_t sj = midx[msg.src];
            PGXD_CHECK_MSG(sj < q && layout.group_of(sj) != g_me &&
                               layout.partner(sj, g_me) == idx,
                           "level-1 counts from an unexpected sender");
            if (counted[sj]) continue;
            counted[sj] = true;
            ++got;
            bucket_n[sj] = msg.payload.counts[0];
          }
        }
        stamp(Step::kPartitionPlan, layout.groups * sizeof(std::uint64_t));

        // Level-1 bucket exchange: one message per (sender, foreign group)
        // pair — O(q * sqrt(q)) messages cluster-wide instead of O(q^2).
        std::uint64_t l1_wire_sent = 0;
        for (std::size_t g = 0; g < layout.groups; ++g) {
          if (g == g_me) continue;
          const std::size_t dst = ctx.members[layout.partner(idx, g)];
          const std::size_t lo = gplan.bounds[g];
          const std::size_t hi = gplan.bounds[g + 1];
          if (lo == hi) continue;
          std::vector<Key> bucket(
              local.begin() + static_cast<std::ptrdiff_t>(lo),
              local.begin() + static_cast<std::ptrdiff_t>(hi));
          const std::uint64_t bytes =
              bucket.size() * kDataWireBytesPerKey + kChunkHeaderBytes;
          note_data_bytes(bytes);
          ms.sent_elements += bucket.size();
          l1_wire_sent += bytes;
          co_await m.charge_copy(bucket.size());
          comm.post(rank, dst, tag(kTagL1Data),
                    Msg::of_data(std::move(bucket), lo, 0), bytes);
        }
        // Contributors to this rank's group-local array, in member-index
        // order, so the merged result is deterministic under any arrival
        // order.
        std::vector<std::size_t> contrib;
        for (std::size_t k = 0; k < q; ++k)
          if (bucket_n[k] > 0) contrib.push_back(k);
        std::vector<std::size_t> roff(contrib.size() + 1, 0);
        for (std::size_t c = 0; c < contrib.size(); ++c)
          roff[c + 1] = roff[c] + bucket_n[contrib[c]];
        const std::size_t l1_total = roff.back();
        std::vector<Key> merged(l1_total);
        // Origin of each merged element: a level-1 bucket is a contiguous
        // slice of its sender's locally sorted shard, so origin indices are
        // reconstructed from the sender rank and the bucket's prov_base —
        // provenance still costs zero bytes on this hop.
        std::vector<std::uint64_t> mprov(l1_total);
        std::size_t expect_msgs = 0;
        for (std::size_t c = 0; c < contrib.size(); ++c) {
          if (contrib[c] != idx) {
            ++expect_msgs;
            continue;
          }
          std::copy(
              local.begin() + static_cast<std::ptrdiff_t>(gplan.bounds[g_me]),
              local.begin() +
                  static_cast<std::ptrdiff_t>(gplan.bounds[g_me + 1]),
              merged.begin() + static_cast<std::ptrdiff_t>(roff[c]));
          for (std::size_t i = 0; i < bucket_n[idx]; ++i)
            mprov[roff[c] + i] = pack_prov(rank, gplan.bounds[g_me] + i);
        }
        co_await m.charge_copy(bucket_n[idx]);
        {
          std::vector<bool> placed_from(q, false);
          std::uint64_t l1_recv = 0;
          for (std::size_t got = 0; got < expect_msgs;) {
            auto msg = co_await recv_sort(m, ctx, tag(kTagL1Data), nullptr,
                                          nullptr);
            const std::size_t sj = midx[msg.src];
            PGXD_CHECK_MSG(sj < q, "level-1 bucket from a rank outside the "
                                   "attempt membership");
            if (placed_from[sj]) continue;  // duplicating fabric: drop copy
            placed_from[sj] = true;
            ++got;
            const auto it =
                std::lower_bound(contrib.begin(), contrib.end(), sj);
            PGXD_CHECK_MSG(it != contrib.end() && *it == sj &&
                               msg.payload.keys.size() == bucket_n[sj],
                           "level-1 bucket does not match its announced size");
            const auto c = static_cast<std::size_t>(it - contrib.begin());
            std::copy(msg.payload.keys.begin(), msg.payload.keys.end(),
                      merged.begin() + static_cast<std::ptrdiff_t>(roff[c]));
            for (std::size_t i = 0; i < msg.payload.keys.size(); ++i)
              mprov[roff[c] + i] =
                  pack_prov(msg.src, msg.payload.prov_base + i);
            l1_recv += msg.payload.keys.size();
            co_await m.charge_copy(msg.payload.keys.size());
          }
          ms.received_elements += l1_recv;
          part_level1_items_ += l1_recv;
          if (telemetry)
            reg.counter("sort.partition.level1_items").inc(l1_recv);
        }
        local = std::move(merged);
        // Re-establish the sorted-local invariant over the received runs,
        // carrying each element's origin through the same permutation.
        {
          std::vector<std::size_t> bounds(roff.begin(), roff.end());
          auto key_less = [this](const Key& a, const Key& b) {
            return comp_(a, b);
          };
          if (l1_total <= std::numeric_limits<std::uint32_t>::max()) {
            std::vector<std::uint32_t> perm(l1_total);
            std::iota(perm.begin(), perm.end(), 0u);
            std::vector<Key> kscr;
            std::vector<std::uint32_t> pscr;
            rt::TempAlloc scratch_mem(
                mem, l1_total * (sizeof(Key) + 2 * sizeof(std::uint32_t)));
            const auto res = sort::balanced_merge_soa(
                local, perm, std::move(bounds), kscr, pscr, key_less);
            if (res.in_scratch) local = std::move(kscr);
            const std::uint32_t* mp = (res.in_scratch ? pscr : perm).data();
            std::vector<std::uint64_t> permuted(l1_total);
            for (std::size_t i = 0; i < l1_total; ++i)
              permuted[i] = mprov[mp[i]];
            mprov = std::move(permuted);
          } else {
            // Beyond u32 indexing: merge (key, origin) records directly.
            std::vector<ItemT> items(l1_total);
            for (std::size_t i = 0; i < l1_total; ++i)
              items[i] = ItemT{local[i], unpack_prov(mprov[i])};
            std::vector<ItemT> scratch;
            rt::TempAlloc scratch_mem(mem, l1_total * sizeof(ItemT));
            auto item_less = [this](const ItemT& a, const ItemT& b) {
              return comp_(a.key, b.key);
            };
            sort::balanced_merge(items, std::move(bounds), scratch,
                                 item_less);
            for (std::size_t i = 0; i < l1_total; ++i) {
              local[i] = items[i].key;
              mprov[i] =
                  pack_prov(items[i].prov.prev_machine,
                            items[i].prov.prev_index);
            }
          }
          co_await m.charge_balanced_merge(
              l1_total, std::max<std::size_t>(1, contrib.size()));
        }
        lprov = std::move(mprov);
        two_hop = true;
        stamp(Step::kExchange, l1_wire_sent);
        scope.assign(
            ctx.members.begin() + static_cast<std::ptrdiff_t>(
                                      layout.start[g_me]),
            ctx.members.begin() + static_cast<std::ptrdiff_t>(
                                      layout.start[g_me + 1]));
      }
    }

    // Steps (2)-(6) over the partition scope.
    AttemptCtx pctx(ctx.attempt, ctx.members, std::move(scope));
    co_await partition_phase(m, std::move(pctx), std::move(local),
                             std::move(lprov), two_hop);
    co_return;
  }

  // Not a coroutine (GCC 12 pattern).
  sim::Task<void> partition_phase(rt::Machine& m, AttemptCtx ctx,
                                  std::vector<Key> local,
                                  std::vector<std::uint64_t> lprov = {},
                                  bool two_hop = false) {
    return partition_phase_impl(m, std::move(ctx), std::move(local),
                                std::move(lprov), two_hop);
  }

  // Steps (2)-(6) of the pipeline over ctx.scope — the full membership for
  // the flat schemes, this rank's group after the AMS level-1 exchange. All
  // per-source bookkeeping is indexed 0..q-1 over ctx.scope; aborts and the
  // failure detector keep watching the full membership through recv_sort.
  sim::Task<void> partition_phase_impl(rt::Machine& m, AttemptCtx ctx,
                                       std::vector<Key> local,
                                       std::vector<std::uint64_t> lprov,
                                       bool two_hop) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const std::size_t q = ctx.scope.size();
    const std::size_t master = ctx.scope[0];
    // Physical rank -> scope index (q = not in this rank's scope).
    std::vector<std::size_t> midx(p, q);
    for (std::size_t j = 0; j < q; ++j) midx[ctx.scope[j]] = j;
    const std::size_t idx = midx[rank];
    PGXD_CHECK_MSG(idx < q, "partition phase running on a non-scope rank");
    auto& sim = cluster_.simulator();
    auto& mem = m.memory();
    MachineStats& ms = stats_.machines[rank];
    obs::MetricsRegistry& reg = metrics_[rank];
    const bool telemetry = cfg_.telemetry;
    const std::size_t n = local.size();
    // Explicit-provenance mode: a property of the attempt (the level-1
    // exchange ran), shared by every scope member — a rank with an empty
    // local array still receives origin planes from its peers.
    const bool xprov = two_hop;
    PGXD_CHECK(lprov.size() == (xprov ? n : 0));
    const bool histogram =
        cfg_.partition == PartitionScheme::kHistogramRefine;
    sim::SimTime mark = sim.now();
    auto stamp = [&](Step s, std::uint64_t bytes = 0) {
      ms.steps[s] += sim.now() - mark;
      if (trace_) trace_->record(rank, step_name(s), mark, sim.now(), bytes);
      if (telemetry) {
        reg.gauge(std::string("sort.step.") + step_metric_suffix(s) + "_ns")
            .set(static_cast<double>(ms.steps[s]));
        reg.counter(std::string("sort.step.") + step_metric_suffix(s) +
                    "_bytes")
            .inc(bytes);
      }
      mark = sim.now();
    };

    // ---- Step 2: regular samples to the master ------------------------------
    const std::uint64_t sample_count = sample_budget(q, n, histogram);
    std::vector<Key> samples = sort::regular_samples<Key>(local, sample_count);
    ms.sample_count += samples.size();
    co_await m.charge_copy(samples.size());
    if (rank != master) {
      // prov_base carries the shard size so the master can weight samples
      // from unequal shards (Spark's RangePartitioner does the same).
      const std::uint64_t bytes = samples.size() * sizeof(Key);
      note_control_bytes(bytes);
      co_await comm.send(rank, master, tag(kTagSamples),
                         Msg::of_data(samples, n, 0), bytes);
    }
    if (telemetry) reg.counter("sort.sampling.samples").inc(samples.size());
    stamp(Step::kSampling, samples.size() * sizeof(Key));

    // ---- Step 3: splitter determination -------------------------------------
    // kOneLevelSample (and AMS level 2): the paper's one-shot master
    // selection. kHistogramRefine: the master certifies candidate splitters
    // by their exact global ranks over kTagProbe/kTagReply rounds until
    // every boundary is within the epsilon target. Either way the final
    // splitters arrive on kTagSplitters, so steps (4)-(6) are
    // scheme-agnostic.
    if (histogram) {
      if (rank == master) {
        co_await refine_splitters(m, ctx, local, samples, n);
      } else {
        co_await serve_refinement(m, ctx, local, n);
      }
    } else if (rank == master) {
      // Gather all sample vectors into the master's one read buffer. Each
      // sample represents shard_size/sample_count elements of its shard, so
      // splitter selection weights samples accordingly — shards may be of
      // very different sizes (e.g. graph partitions balanced by edges).
      std::vector<sort::WeightedSample<Key>> pool;
      auto add_samples = [&pool](const std::vector<Key>& keys,
                                 std::uint64_t shard_n) {
        if (keys.empty()) return;
        const double w = static_cast<double>(shard_n) /
                         static_cast<double>(keys.size());
        for (const auto& k : keys)
          pool.push_back(sort::WeightedSample<Key>{k, w});
      };
      add_samples(samples, n);
      // Wait for q-1 distinct sources, not q-1 messages: on a duplicating
      // fabric without reliable delivery a shard's samples can arrive
      // twice, and counting messages would starve another shard.
      std::vector<bool> sampled(q, false);
      sampled[idx] = true;
      for (std::size_t distinct = 1; distinct < q;) {
        auto msg = co_await recv_sort(m, ctx, tag(kTagSamples), nullptr,
                                      nullptr);
        const std::size_t sj = midx[msg.src];
        PGXD_CHECK_MSG(sj < q,
                       "samples from a rank outside the attempt membership");
        if (sampled[sj]) continue;
        sampled[sj] = true;
        ++distinct;
        add_samples(msg.payload.keys, msg.payload.prov_base);
      }
      {
        rt::TempAlloc pool_mem(mem, pool.size() * sizeof(Key) * 2);
        std::sort(pool.begin(), pool.end(),
                  [this](const sort::WeightedSample<Key>& a,
                         const sort::WeightedSample<Key>& b) {
                    return comp_(a.key, b.key);
                  });
        co_await m.compute_parallel(m.cost().sort_time(pool.size()));
        splitters_ = sort::select_splitters_weighted<Key, Comp>(pool, q, comp_);
      }
      for (std::size_t j = 0; j < q; ++j) {
        const std::size_t dst = ctx.scope[j];
        const std::uint64_t bytes = splitters_.size() * sizeof(Key);
        if (dst != master) note_control_bytes(bytes);
        comm.post(master, dst, tag(kTagSplitters), Msg::of_keys(splitters_),
                  bytes);
      }
    }
    auto splitters_msg = co_await recv_sort(m, ctx, tag(kTagSplitters),
                                            nullptr, nullptr);
    const std::vector<Key> splitters = std::move(splitters_msg.payload.keys);
    const std::vector<std::uint64_t> dup_takes =
        std::move(splitters_msg.payload.counts);
    stamp(Step::kSplitterSelect, splitters.size() * sizeof(Key));

    // ---- Step 4: partition plan + counts exchange ----------------------------
    PartitionPlan plan;
    if (histogram && !splitters.empty() &&
        dup_takes.size() == splitters.size()) {
      // Exact-rank bounds from the refinement's resolution round: every
      // duplicate of splitter i sits right of lower_bound, and the
      // master's take says how many of ours move left of the boundary.
      plan.bounds.assign(q + 1, 0);
      plan.bounds[q] = n;
      for (std::size_t i = 0; i < splitters.size(); ++i) {
        const auto lb = static_cast<std::size_t>(
            std::lower_bound(local.begin(), local.end(), splitters[i],
                             comp_) -
            local.begin());
        const auto ub = static_cast<std::size_t>(
            std::upper_bound(local.begin(), local.end(), splitters[i],
                             comp_) -
            local.begin());
        const std::size_t b =
            std::min(ub, lb + static_cast<std::size_t>(dup_takes[i]));
        plan.bounds[i + 1] = std::max(b, plan.bounds[i]);
      }
      plan.searches = 2 * splitters.size();
    } else {
      plan = plan_partition<Key, Comp>(local, splitters,
                                       cfg_.use_investigator, comp_);
    }
    ms.searches += plan.searches;
    ms.duplicate_groups += plan.duplicate_groups;
    co_await m.charge_binary_search(n, plan.searches);

    // Slim counts: each destination only needs its own element count, so
    // one u64 travels per (sender, receiver) pair — not the full q-entry
    // vector, whose transient bytes would grow O(q^3) cluster-wide. Past
    // kBatchedCountsScope members that is q^2 tiny messages cluster-wide,
    // and per-message overhead (headers, acks, event scheduling) dwarfs
    // the payload — so large scopes relay the count matrix through the
    // scope master instead: 2(q-1) q-entry messages, 2q^2 u64 transient.
    const std::vector<std::uint64_t> send_counts = plan_sizes(plan);
    std::vector<std::uint64_t> recv_counts(q, 0);
    if (q > kBatchedCountsScope) {
      if (rank == master) {
        std::vector<std::vector<std::uint64_t>> matrix(q);
        matrix[idx] = send_counts;
        std::vector<bool> got(q, false);
        got[idx] = true;
        for (std::size_t distinct = 1; distinct < q;) {
          auto msg =
              co_await recv_sort(m, ctx, tag(kTagCounts), nullptr, nullptr);
          const std::size_t sj = midx[msg.src];
          PGXD_CHECK_MSG(sj < q,
                         "counts from a rank outside the attempt membership");
          if (got[sj]) continue;
          PGXD_CHECK(msg.payload.counts.size() == q);
          got[sj] = true;
          ++distinct;
          matrix[sj] = std::move(msg.payload.counts);
        }
        for (std::size_t j = 0; j < q; ++j) {
          std::vector<std::uint64_t> col(q);
          for (std::size_t s = 0; s < q; ++s) col[s] = matrix[s][j];
          if (j == idx) {
            recv_counts = std::move(col);
            continue;
          }
          const std::uint64_t bytes = q * sizeof(std::uint64_t);
          note_control_bytes(bytes);
          comm.post(rank, ctx.scope[j], tag(kTagCounts),
                    Msg::of_counts(std::move(col)), bytes);
        }
      } else {
        const std::uint64_t bytes = q * sizeof(std::uint64_t);
        note_control_bytes(bytes);
        comm.post(rank, master, tag(kTagCounts),
                  Msg::of_counts(std::vector<std::uint64_t>(send_counts)),
                  bytes);
        for (;;) {
          auto msg =
              co_await recv_sort(m, ctx, tag(kTagCounts), nullptr, nullptr);
          if (msg.src != master) continue;  // stray frame: master's is law
          PGXD_CHECK(msg.payload.counts.size() == q);
          recv_counts = std::move(msg.payload.counts);
          break;
        }
      }
    } else {
      for (std::size_t j = 0; j < q; ++j) {
        const std::size_t dst = ctx.scope[j];
        if (dst == rank) continue;
        std::vector<std::uint64_t> one;
        one.push_back(send_counts[j]);
        const std::uint64_t bytes = sizeof(std::uint64_t);
        note_control_bytes(bytes);
        comm.post(rank, dst, tag(kTagCounts), Msg::of_counts(std::move(one)),
                  bytes);
      }
      // Receive everyone's counts; recv_counts[j] = elements member j sends
      // us. As with the sample gather, wait for distinct sources so
      // duplicated counts messages cannot starve a source.
      recv_counts[idx] = send_counts[idx];
      std::vector<bool> counted(q, false);
      counted[idx] = true;
      for (std::size_t distinct = 1; distinct < q;) {
        auto msg =
            co_await recv_sort(m, ctx, tag(kTagCounts), nullptr, nullptr);
        PGXD_CHECK(msg.payload.counts.size() == 1);
        const std::size_t sj = midx[msg.src];
        PGXD_CHECK_MSG(sj < q,
                       "counts from a rank outside the attempt membership");
        if (counted[sj]) continue;
        counted[sj] = true;
        ++distinct;
        recv_counts[sj] = msg.payload.counts[0];
      }
    }
    if (telemetry) {
      reg.counter("sort.plan.searches").inc(plan.searches);
      reg.counter("sort.plan.duplicate_groups").inc(plan.duplicate_groups);
    }
    stamp(Step::kPartitionPlan, q * sizeof(std::uint64_t));

    // ---- Step 5: simultaneous send/receive ---------------------------------
    // "each processor knows how much data it will receive ... by applying
    // offsets for each received data entry" — offsets per source member:
    std::vector<std::size_t> offsets(q + 1, 0);
    for (std::size_t s = 0; s < q; ++s)
      offsets[s + 1] = offsets[s] + recv_counts[s];
    const std::size_t total_recv = offsets[q];

    auto& out = output_[rank];
    out.resize(total_recv);
    // Result keys + provenance live to the end of the sort: persistent.
    mem.alloc_persistent(total_recv * kStoredBytesPerItem);

    const std::uint64_t chunk_elems =
        cfg_.buffered_exchange
            ? std::max<std::uint64_t>(1, cfg_.read_buffer_bytes / kDataWireBytesPerKey)
            : std::numeric_limits<std::uint64_t>::max();

    // Per-source write cursors; arrival order across sources is irrelevant.
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);

    // SoA exchange+merge path: the receiver stores bare keys at their final
    // offsets plus one range-start per source, merges keys with a compact
    // u32 permutation, and materializes Item records (key + reconstructed
    // provenance) once at the very end. Item records are built per element
    // in the AoS path instead. Falls back to AoS for the sequential k-way
    // ablation and for partitions beyond u32 indexing.
    const MergeAlgo merge_algo = cfg_.effective_final_merge();
    const bool soa = cfg_.soa_final_merge &&
                     merge_algo != MergeAlgo::kSequentialKway &&
                     total_recv <= std::numeric_limits<std::uint32_t>::max();
    const bool use_pool = cfg_.use_buffer_pool;
    // PGX.D keeps a fixed set of request buffers per machine; this is the
    // cluster-wide equivalent (the pool is shared — one address space).
    // Once this many leases are outstanding and the free list is dry, a
    // sender must recycle an arrived chunk before leasing another, which
    // bounds exchange allocations at O(q) instead of O(chunks).
    const std::int64_t pool_cap =
        static_cast<std::int64_t>(std::max<std::size_t>(2 * q, 8));
    std::vector<Key> recv_keys;
    std::optional<rt::TempAlloc> recv_keys_mem;
    // src_lo[s]: start of the (member s -> rank) range in s's locally
    // sorted sequence, learned from any of s's chunks (prov_base -
    // rel_offset). The provenance of the element at receive position pos is
    // then src_lo[s] + (pos - offsets[s]) for the s whose range contains it.
    std::vector<std::uint64_t> src_lo(q, 0);
    if (soa) {
      recv_keys.resize(total_recv);
      recv_keys_mem.emplace(mem, total_recv * sizeof(Key));
    }
    // Explicit origin plane for the two-hop exchange (SoA path); the AoS
    // path unpacks origins straight into Item records instead.
    std::vector<std::uint64_t> recv_prov;
    std::optional<rt::TempAlloc> recv_prov_mem;
    if (soa && xprov) {
      recv_prov.resize(total_recv);
      recv_prov_mem.emplace(mem, total_recv * sizeof(std::uint64_t));
    }

    // Self range: a local memory move, not fabric traffic.
    {
      const std::size_t lo = plan.bounds[idx];
      const std::size_t hi = plan.bounds[idx + 1];
      if (soa) {
        src_lo[idx] = lo;
        std::copy(local.begin() + static_cast<std::ptrdiff_t>(lo),
                  local.begin() + static_cast<std::ptrdiff_t>(hi),
                  recv_keys.begin() + static_cast<std::ptrdiff_t>(offsets[idx]));
        if (xprov)
          std::copy(
              lprov.begin() + static_cast<std::ptrdiff_t>(lo),
              lprov.begin() + static_cast<std::ptrdiff_t>(hi),
              recv_prov.begin() + static_cast<std::ptrdiff_t>(offsets[idx]));
      } else if (xprov) {
        for (std::size_t i = lo; i < hi; ++i)
          out[offsets[idx] + (i - lo)] =
              ItemT{local[i], unpack_prov(lprov[i])};
      } else {
        for (std::size_t i = lo; i < hi; ++i)
          out[offsets[idx] + (i - lo)] =
              ItemT{local[i], Provenance{static_cast<std::uint32_t>(rank), i}};
      }
      cursor[idx] += hi - lo;
      co_await m.charge_copy(hi - lo);
    }

    // Chunk dedup bitmap (replaces a per-source std::set of offsets): a
    // source's chunks sit at rel_offset = c * chunk_elems, so chunk c of
    // member s maps to bit c of that member's word range. O(q + chunks/64)
    // memory, zero allocations per chunk. Doubles as the straggler hedge's
    // missing-chunk ledger.
    std::vector<std::size_t> seen_base(q + 1, 0);
    for (std::size_t s = 0; s < q; ++s) {
      std::uint64_t nchunks = 0;
      if (s != idx && recv_counts[s] > 0)
        nchunks = cfg_.buffered_exchange
                      ? (recv_counts[s] + chunk_elems - 1) / chunk_elems
                      : 1;
      seen_base[s + 1] =
          seen_base[s] + static_cast<std::size_t>((nchunks + 63) / 64);
    }
    std::vector<std::uint64_t> seen_words(seen_base[q], 0);

    const std::size_t remote_expected = total_recv - recv_counts[idx];
    std::size_t remote_placed = 0;
    // Hold edges for deadlock *naming* (never detection): each peer that
    // still owes this rank chunks "holds" the rank's data mailbox until
    // its range is fully placed, and a pooled chunk in flight to dst means
    // dst "holds" a pool buffer. Mailbox holds are O(q) per rank, so they
    // are capped at kWaitGraphHoldScope members; past that a deadlock is
    // still detected and reported, just without per-peer attribution.
    auto& wg = cluster_.wait_graph();
    const bool track_holds = q <= kWaitGraphHoldScope;
    const auto mbox = sim::WaitResource::mailbox(rank, tag(kTagData));
    if (track_holds) {
      wg.clear_holds(mbox);  // stale holds from an aborted prior attempt
      for (std::size_t s = 0; s < q; ++s)
        if (s != idx && recv_counts[s] > 0) wg.add_hold(mbox, ctx.scope[s]);
    }
    // Wire bytes this rank put on the fabric during the exchange (span
    // metadata for the send/receive step).
    std::uint64_t exchange_wire_sent = 0;

    // Hot-loop instruments, resolved once: per-chunk telemetry is then a
    // pointer-guarded integer add.
    obs::Counter* c_chunks_sent = nullptr;
    obs::Counter* c_chunks_recv = nullptr;
    obs::Counter* c_dup_chunks = nullptr;
    obs::Counter* c_items_sent = nullptr;
    obs::Counter* c_items_recv = nullptr;
    obs::Counter* c_wire_sent = nullptr;
    obs::LogHistogram* h_chunk_elems = nullptr;
    if (telemetry) {
      c_chunks_sent = &reg.counter("sort.exchange.chunks_sent");
      c_chunks_recv = &reg.counter("sort.exchange.chunks_received");
      c_dup_chunks = &reg.counter("sort.exchange.duplicate_chunks");
      c_items_sent = &reg.counter("sort.exchange.items_sent");
      c_items_recv = &reg.counter("sort.exchange.items_received");
      c_wire_sent = &reg.counter("sort.exchange.wire_bytes_sent");
      h_chunk_elems = &reg.histogram("sort.exchange.chunk_elems");
    }

    // Places one arriving chunk — dedup, copy to its final offset,
    // provenance/range-start bookkeeping, buffer return to the pool — and
    // returns the elements placed (0 for a duplicate). The caller charges
    // the simulated copy cost.
    auto place_chunk = [&](auto& msg) -> std::size_t {
      PGXD_CHECK(msg.src != rank);
      const std::size_t sj = midx[msg.src];
      PGXD_CHECK_MSG(sj < q,
                     "data chunk from a rank outside the attempt membership");
      auto& keys = msg.payload.keys;
      const std::uint64_t cidx = msg.payload.rel_offset / chunk_elems;
      const std::size_t word =
          seen_base[sj] + static_cast<std::size_t>(cidx / 64);
      PGXD_CHECK_MSG(word < seen_base[sj + 1],
                     "chunk offset beyond its source's announced range");
      const std::uint64_t bit = std::uint64_t{1} << (cidx % 64);
      if (c_chunks_recv) c_chunks_recv->inc();
      if (seen_words[word] & bit) {
        ++ms.duplicate_chunks;
        if (c_dup_chunks) c_dup_chunks->inc();
        if (use_pool) {
          pool_.release(std::move(keys));
          wg.remove_hold(sim::WaitResource::pool(), rank);
        }
        return 0;
      }
      seen_words[word] |= bit;
      const std::uint64_t base = msg.payload.prov_base;
      const std::size_t at = offsets[sj] + msg.payload.rel_offset;
      PGXD_CHECK_MSG(at + keys.size() <= offsets[sj + 1],
                     "chunk overruns its source's receive range");
      if (xprov)
        PGXD_CHECK_MSG(msg.payload.counts.size() == keys.size(),
                       "two-hop data chunk arrived without its origin plane");
      if (soa) {
        src_lo[sj] = base - msg.payload.rel_offset;
        std::copy(keys.begin(), keys.end(),
                  recv_keys.begin() + static_cast<std::ptrdiff_t>(at));
        if (xprov)
          std::copy(msg.payload.counts.begin(), msg.payload.counts.end(),
                    recv_prov.begin() + static_cast<std::ptrdiff_t>(at));
      } else if (xprov) {
        for (std::size_t i = 0; i < keys.size(); ++i)
          out[at + i] = ItemT{keys[i], unpack_prov(msg.payload.counts[i])};
      } else {
        const auto src32 = static_cast<std::uint32_t>(msg.src);
        for (std::size_t i = 0; i < keys.size(); ++i)
          out[at + i] = ItemT{keys[i], Provenance{src32, base + i}};
      }
      const std::size_t placed = keys.size();
      cursor[sj] += placed;
      remote_placed += placed;
      if (track_holds && cursor[sj] == offsets[sj + 1])
        wg.remove_hold(mbox, ctx.scope[sj]);
      if (c_items_recv) c_items_recv->inc(placed);
      if (use_pool) {
        pool_.release(std::move(keys));
        wg.remove_hold(sim::WaitResource::pool(), rank);
      }
      return placed;
    };

    // Sender-side service window for straggler re-requests, and receiver-
    // side progress tracking for hedging; both dormant unless a recovery
    // supervisor is driving this attempt.
    ExchangeState xs;
    xs.local = &local;
    xs.plan = &plan;
    if (xprov) xs.lprov = &lprov;
    xs.chunk_elems = chunk_elems;
    xs.use_pool = use_pool;
    RecvProgress rp;
    rp.seen_base = &seen_base;
    rp.seen_words = &seen_words;
    rp.recv_counts = &recv_counts;
    rp.chunk_elems = chunk_elems;
    rp.last_arrival = sim.now();

    // Sends: lease a chunk buffer from the pool, pack it from a span slice
    // of the local array (one reserve either way), and post asynchronously
    // (async mode) or send blocking + barrier (bulk-synchronous ablation).
    // In async mode the loop also drains chunks that have already arrived —
    // the paper's "simultaneous asynchronous send/receive" — which both
    // overlaps the copies and returns buffers to the pool for re-lease.
    // In a scoped (AMS group) exchange the cluster-wide pool is shared by
    // several concurrent exchanges, so "a buffer is outstanding" no longer
    // implies "a chunk is in flight to a member of *this* exchange" — a
    // whole group parked in the backpressure recv before posting any send
    // would sleep through the pool refilling. Scoped senders therefore only
    // block to drain chunks that have actually arrived and otherwise let
    // the pool allocate fresh.
    const bool scoped_exchange = q < ctx.members.size();
    for (std::size_t step = 1; step < q; ++step) {
      // Ring order starting after own member index spreads incast across
      // receivers.
      const std::size_t dstj = (idx + step) % q;
      const std::size_t dst = ctx.scope[dstj];
      const std::size_t lo = plan.bounds[dstj];
      const std::size_t hi = plan.bounds[dstj + 1];
      for (std::size_t at = lo; at < hi;) {
        // Backpressure: with the pool dry and the outstanding cap reached,
        // block on a receive — placing the arrived chunk returns its buffer
        // — instead of allocating yet another. Deadlock-free: we only block
        // while peers still owe us data, and (in the whole-membership case)
        // every outstanding buffer is in flight to (or queued at) a machine
        // that is still draining.
        while (use_pool && cfg_.async_exchange &&
               remote_placed < remote_expected && pool_.free_buffers() == 0 &&
               pool_.outstanding() >= pool_cap &&
               (!scoped_exchange || !cfg_.scoped_pending_guard ||
                comm.pending(rank, tag(kTagData)) > 0)) {
          // Annotation edge: while parked here the rank is really waiting
          // for a pool buffer, not just its mailbox. Never counted by the
          // detector; it only enriches a deadlock cycle's naming. The
          // guard's destructor drops the edge even when recv_sort throws
          // (crash / abort translation).
          PoolWaitGuard pw{&cluster_.wait_graph(),
                           cluster_.wait_graph().begin_wait(
                               rank, sim::WaitResource::pool(),
                               /*annotation=*/true)};
          auto msg = co_await recv_sort(m, ctx, tag(kTagData), &xs, &rp);
          const std::size_t placed = place_chunk(msg);
          if (placed > 0) co_await m.charge_copy(placed);
        }
        const std::size_t take =
            std::min<std::uint64_t>(hi - at, chunk_elems);
        const std::span<const Key> slice(local.data() + at, take);
        std::vector<Key> chunk =
            use_pool ? pool_.acquire(take) : std::vector<Key>();
        chunk.reserve(take);
        chunk.assign(slice.begin(), slice.end());
        std::vector<std::uint64_t> pchunk;
        if (xprov)
          pchunk.assign(lprov.begin() + static_cast<std::ptrdiff_t>(at),
                        lprov.begin() + static_cast<std::ptrdiff_t>(at + take));
        const std::uint64_t bytes =
            take * kDataWireBytesPerKey + kChunkHeaderBytes;
        note_data_bytes(bytes);
        ms.sent_elements += take;
        exchange_wire_sent += bytes;
        if (c_chunks_sent) {
          c_chunks_sent->inc();
          c_items_sent->inc(take);
          c_wire_sent->inc(bytes);
          h_chunk_elems->add(take);
        }
        co_await m.charge_copy(take);  // pack the request buffer
        if (use_pool) wg.add_hold(sim::WaitResource::pool(), dst);
        if (cfg_.async_exchange) {
          comm.post(rank, dst, tag(kTagData),
                    Msg(std::move(chunk), std::move(pchunk), at, at - lo),
                    bytes);
          while (remote_placed < remote_expected &&
                 comm.pending(rank, tag(kTagData)) > 0) {
            auto msg = co_await recv_sort(m, ctx, tag(kTagData), &xs, &rp);
            const std::size_t placed = place_chunk(msg);
            if (placed > 0) co_await m.charge_copy(placed);
          }
        } else {
          co_await comm.send(rank, dst, tag(kTagData),
                             Msg(std::move(chunk), std::move(pchunk), at,
                                 at - lo),
                             bytes);
        }
        at += take;
      }
    }
    if (!cfg_.async_exchange) co_await comm.barrier(rank);

    // Receives: place each incoming chunk at its source's base offset plus
    // the chunk's own relative offset — correct under any arrival order —
    // discarding chunks whose (src, chunk index) bit was already set, so
    // the loop stays correct when a duplicating fabric redelivers a chunk.
    // It counts placed *elements*, not messages.
    while (remote_placed < remote_expected) {
      auto msg = co_await recv_sort(m, ctx, tag(kTagData), &xs, &rp);
      const std::size_t placed = place_chunk(msg);
      if (placed > 0) co_await m.charge_copy(placed);
    }
    for (std::size_t s = 0; s < q; ++s)
      PGXD_CHECK_MSG(cursor[s] == offsets[s + 1],
                     "exchange delivered wrong element counts");
    ms.received_elements += total_recv;
    // The local pre-sorted array (and its origin plane) can be released
    // now; no recv_sort call below passes &xs, so no re-request can touch
    // the freed storage.
    local.clear();
    local.shrink_to_fit();
    lprov.clear();
    lprov.shrink_to_fit();
    stamp(Step::kExchange, exchange_wire_sent);

    // ---- Step 6: final merge ------------------------------------------------
    {
      std::vector<std::size_t> bounds(offsets.begin(), offsets.end());
      std::size_t nonempty_runs = 0;
      for (std::size_t s = 0; s < q; ++s)
        nonempty_runs += (recv_counts[s] > 0);
      const std::size_t runs = std::max<std::size_t>(1, nonempty_runs);
      if (soa) {
        // Bare keys + u32 permutation merge as SoA planes; the output
        // partition is then written directly from the result planes — no
        // staging copy-back — with provenance reconstructed from each
        // element's pre-merge position.
        std::vector<std::uint32_t> perm(total_recv);
        std::iota(perm.begin(), perm.end(), 0u);
        std::vector<Key> key_scratch;
        std::vector<std::uint32_t> perm_scratch;
        rt::TempAlloc scratch_mem(
            mem, total_recv * (sizeof(Key) + 2 * sizeof(std::uint32_t)));
        const Key* mk = nullptr;
        const std::uint32_t* mp = nullptr;
        if (merge_algo == MergeAlgo::kParallelKway) {
          // Single pass: splitter search + per-range loser trees. The DES
          // sorter has no real pool, so the per-range split is exercised
          // for real (sequentially here) with the simulated machine's
          // thread count, while the cost model charges it as parallel.
          const auto kres = sort::parallel_kway_merge_soa(
              recv_keys, perm, bounds, key_scratch, perm_scratch, comp_,
              /*pool=*/nullptr, /*ranges=*/m.threads());
          mk = key_scratch.data();
          mp = perm_scratch.data();
          if (telemetry) {
            reg.counter("sort.merge.kway_ranges").inc(kres.ranges);
            reg.counter("sort.merge.kway_select_rounds")
                .inc(kres.select_rounds);
          }
          co_await m.charge_parallel_kway_merge(total_recv, runs);
        } else {
          // Fig. 2 pairwise tree: each level moves sizeof(Key) + 4 bytes
          // per element instead of sizeof(Item).
          const auto res = sort::balanced_merge_soa(
              recv_keys, perm, std::move(bounds), key_scratch, perm_scratch,
              comp_);
          mk = (res.in_scratch ? key_scratch : recv_keys).data();
          mp = (res.in_scratch ? perm_scratch : perm).data();
          co_await m.charge_balanced_merge(total_recv, runs);
        }
        for (std::size_t i = 0; i < total_recv; ++i) {
          const std::size_t pos = mp[i];
          if (xprov) {
            out[i] = ItemT{mk[i], unpack_prov(recv_prov[pos])};
            continue;
          }
          const std::size_t s =
              static_cast<std::size_t>(
                  std::upper_bound(offsets.begin(), offsets.end(), pos) -
                  offsets.begin()) -
              1;
          out[i] =
              ItemT{mk[i],
                    Provenance{static_cast<std::uint32_t>(ctx.scope[s]),
                               src_lo[s] + (pos - offsets[s])}};
        }
      } else {
        std::vector<ItemT> scratch;
        rt::TempAlloc scratch_mem(mem, total_recv * sizeof(ItemT));
        auto item_less = [this](const ItemT& a, const ItemT& b) {
          return comp_(a.key, b.key);
        };
        if (merge_algo == MergeAlgo::kParallelKway) {
          const auto kres = sort::parallel_kway_merge(
              out, bounds, scratch, item_less, /*pool=*/nullptr,
              /*ranges=*/m.threads());
          out.swap(scratch);
          if (telemetry) {
            reg.counter("sort.merge.kway_ranges").inc(kres.ranges);
            reg.counter("sort.merge.kway_select_rounds")
                .inc(kres.select_rounds);
          }
          co_await m.charge_parallel_kway_merge(total_recv, runs);
        } else if (merge_algo == MergeAlgo::kPairwiseTree) {
          sort::balanced_merge(out, std::move(bounds), scratch, item_less);
          co_await m.charge_balanced_merge(total_recv, runs);
        } else {
          // Ablation: one sequential k-way loser-tree pass (real kernel).
          sort::kway_merge(out, bounds, scratch, item_less);
          co_await m.charge_naive_kway_merge(total_recv, runs);
        }
      }
      if (telemetry)
        reg.counter(std::string("sort.merge.algo.") +
                    merge_algo_name(merge_algo))
            .inc(1);
    }
    recv_keys = std::vector<Key>();
    recv_keys_mem.reset();
    recv_prov = std::vector<std::uint64_t>();
    recv_prov_mem.reset();
    stamp(Step::kFinalMerge, total_recv * kStoredBytesPerItem);

    // ---- Exactly-once audit -------------------------------------------------
    // Provenance makes delivery auditable: for every source, the previous
    // indices present in the merged output must be recv_counts[src]
    // distinct contiguous integers — any drop, duplicate, or misplacement
    // by the exchange (or the reliable-delivery layer under fault
    // injection, or a hedged re-send slipping past dedup) breaks that.
    // Pure host-side verification; costs no simulated time.
    if (cfg_.audit_exchange) {
      if (xprov) {
        // Two-hop provenance names origin ranks anywhere in the attempt
        // membership (not just this scope), and the level-1 merge destroys
        // per-source contiguity — audit origin distinctness instead: a
        // dropped-then-rehedged or duplicated delivery shows up as a
        // repeated (machine, index) pair. Global coverage (every origin
        // index present exactly once, cluster-wide) is the host validator's
        // job; per-partition the strongest invariant is distinctness.
        std::vector<std::vector<std::uint64_t>> prev_indices(p);
        for (const ItemT& item : out) {
          PGXD_CHECK(item.prov.prev_machine < p);
          prev_indices[item.prov.prev_machine].push_back(
              item.prov.prev_index);
        }
        std::uint64_t attributed = 0;
        for (std::size_t s = 0; s < p; ++s) {
          auto& v = prev_indices[s];
          attributed += v.size();
          std::sort(v.begin(), v.end());
          for (std::size_t i = 1; i < v.size(); ++i)
            PGXD_CHECK_MSG(v[i] != v[i - 1],
                           "exactly-once audit: an element was duplicated "
                           "in the two-hop exchange");
        }
        PGXD_CHECK(attributed == total_recv);
      } else {
        std::vector<std::vector<std::uint64_t>> prev_indices(q);
        for (std::size_t s = 0; s < q; ++s)
          prev_indices[s].reserve(recv_counts[s]);
        for (const ItemT& item : out) {
          PGXD_CHECK(item.prov.prev_machine < p);
          const std::size_t sj = midx[item.prov.prev_machine];
          PGXD_CHECK_MSG(sj < q,
                         "exactly-once audit: element attributed to a rank "
                         "outside the attempt membership");
          prev_indices[sj].push_back(item.prov.prev_index);
        }
        for (std::size_t s = 0; s < q; ++s) {
          PGXD_CHECK_MSG(prev_indices[s].size() == recv_counts[s],
                         "exactly-once audit: received element count from a "
                         "source disagrees with its announced count");
          std::sort(prev_indices[s].begin(), prev_indices[s].end());
          for (std::size_t i = 1; i < prev_indices[s].size(); ++i)
            PGXD_CHECK_MSG(prev_indices[s][i] == prev_indices[s][i - 1] + 1,
                           "exactly-once audit: an element was duplicated or "
                           "lost in the exchange");
        }
      }
    }

    ms.peak_persistent_bytes = mem.peak_persistent();
    ms.peak_temp_bytes = mem.peak_temp();
    if (telemetry) {
      reg.counter("sort.load.items").inc(total_recv);
      reg.counter("sort.load.bytes").inc(total_recv * kStoredBytesPerItem);
      reg.gauge("sort.memory.peak_persistent_bytes")
          .set(static_cast<double>(ms.peak_persistent_bytes));
      reg.gauge("sort.memory.peak_temp_bytes")
          .set(static_cast<double>(ms.peak_temp_bytes));
    }
    co_return;
  }

  Cluster& cluster_;
  SortConfig cfg_;
  int base_tag_;
  Comp comp_;
  sim::Trace* trace_ = nullptr;
  std::vector<obs::MetricsRegistry> metrics_;  // one per rank
  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<ItemT>> output_;
  SortStats<Key> stats_;
  std::vector<Key> splitters_;
  std::uint64_t wire_control_bytes_ = 0;
  std::uint64_t wire_data_bytes_ = 0;
  // Partition-strategy accumulators for the current run, folded into
  // stats_.partition by finalize(); the recovery supervisor resets them per
  // attempt so only the successful attempt is reported. Written by the
  // master (rounds, probe keys, certified epsilon) and by every rank
  // (level-1 items) — single-threaded DES, so plain members suffice.
  std::uint64_t part_rounds_ = 1;
  std::uint64_t part_probe_keys_ = 0;
  std::uint64_t part_level1_items_ = 0;
  std::uint64_t part_groups_ = 1;
  double part_refine_eps_ = 0.0;
  // Recovery supervisor state (only populated between run_recovering's
  // entry and its success): per-attempt inputs with dead shards re-dealt,
  // per-rank attempt outcomes, and the once-per-rank abort fan-out guard.
  bool recovery_active_ = false;
  std::vector<std::vector<Key>> attempt_input_;
  std::vector<AttemptOutcome> outcomes_;
  std::vector<char> abort_sent_;
  std::vector<std::size_t> final_members_;
  std::function<std::vector<Key>(std::size_t)> shard_source_;
  // Exchange chunk buffers: leased by senders, returned by receivers. One
  // pool for the whole cluster — the simulation shares an address space, so
  // a buffer posted by machine A is the same storage machine B receives.
  rt::BufferPool<Key> pool_;
};

// Runs several sorters over the same cluster in one simulation — the
// paper's "sort multiple different data simultaneously". Each sorter must
// have a distinct sort_id and its input installed via set_input(). Not
// recovery-aware: crash scheduling during a simultaneous run is undefined
// behavior at the application layer (use DistributedSorter::run).
template <typename Key, typename Comp = sort::Less>
sim::SimTime sort_simultaneously(
    rt::Cluster<SortMsg<Key>>& cluster,
    std::vector<DistributedSorter<Key, Comp>*> sorters) {
  PGXD_CHECK(!sorters.empty());
  auto& sim = cluster.simulator();
  const sim::SimTime start = sim.now();
  for (std::size_t r = 0; r < cluster.size(); ++r)
    for (auto* sorter : sorters)
      sim.spawn(sorter->machine_program(cluster.machine(r)));
  sim.run();
  PGXD_CHECK_MSG(sim.quiescent(), "simultaneous sort deadlocked");
  const sim::SimTime elapsed = sim.now() - start;
  for (auto* sorter : sorters) sorter->finalize(elapsed);
  return elapsed;
}

}  // namespace pgxd::core
