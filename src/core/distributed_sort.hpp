// The PGX.D distributed sorting method (Sec. IV) — the paper's primary
// contribution, implemented as one coroutine per simulated machine over the
// runtime substrate.
//
// Pipeline (Sec. IV, steps 1-6):
//   1. Local parallel quicksort with the Fig. 2 balanced merge handler.
//   2. Regular samples (X = read_buffer / p bytes each) sent to the master.
//   3. Master selects p-1 splitters, broadcasts them.
//   4. Binary search of splitters on local data, with the duplicate-splitter
//      investigator (Fig. 3c); per-destination counts broadcast so every
//      receiver knows its offsets up front.
//   5. Simultaneous asynchronous send/receive of data ranges, streamed in
//      read-buffer-sized chunks through the data-manager request buffers.
//   6. Balanced parallel merge of the per-source sorted runs, keeping each
//      element's previous processor and index (provenance).
//
// All data movement is real (the output partitions are physically sorted
// real vectors); elapsed time is simulated through the cost model and the
// network fabric.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/provenance.hpp"
#include "core/splitters.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"
#include "sim/trace.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/kway_merge.hpp"
#include "sort/quicksort.hpp"
#include "sort/samples.hpp"
#include "sort/soa_merge.hpp"

namespace pgxd::core {

// One sortable element: the key plus where it came from.
template <typename Key>
struct Item {
  Key key;
  Provenance prov;
};

// Message payload for the sort's communication; which member is populated
// depends on the tag.
// Only keys travel on the wire. Data chunks carry `prov_base`: the chunk's
// start offset in the sender's locally sorted sequence, from which the
// receiver reconstructs per-element provenance — the paper's low exchange
// volume and its "memory used for keeping previous information" (receiver-
// side provenance arrays, Fig. 11) both follow from this design.
template <typename Key>
struct SortMsg {
  std::vector<Key> keys;              // kTagSamples / kTagSplitters / kTagData
  std::vector<std::uint64_t> counts;  // kTagCounts
  std::uint64_t prov_base = 0;        // kTagData: sender-side start offset
  // kTagData: offset of this chunk within the (src -> dst) range, so
  // receivers place chunks correctly even if the fabric reorders them
  // (e.g. under latency jitter).
  std::uint64_t rel_offset = 0;

  // User-declared constructors are load-bearing; see the note on
  // rt::Message about GCC 12 and aggregate temporaries in co_await.
  SortMsg() = default;
  SortMsg(std::vector<Key> k, std::vector<std::uint64_t> c, std::uint64_t base,
          std::uint64_t rel)
      : keys(std::move(k)), counts(std::move(c)), prov_base(base),
        rel_offset(rel) {}

  static SortMsg of_data(std::vector<Key> v, std::uint64_t base,
                         std::uint64_t rel) {
    return SortMsg(std::move(v), {}, base, rel);
  }
  static SortMsg of_keys(std::vector<Key> v) {
    return SortMsg(std::move(v), {}, 0, 0);
  }
  static SortMsg of_counts(std::vector<std::uint64_t> v) {
    return SortMsg({}, std::move(v), 0, 0);
  }
};

template <typename Key, typename Comp = std::less<Key>>
class DistributedSorter {
 public:
  using Msg = SortMsg<Key>;
  using Cluster = rt::Cluster<Msg>;
  using ItemT = Item<Key>;

  // Tag layout; `sort_id` offsets the whole tag space so several sorts can
  // share one cluster run ("able to sort multiple different data
  // simultaneously").
  static constexpr int kTagSamples = 0;
  static constexpr int kTagSplitters = 1;
  static constexpr int kTagCounts = 2;
  static constexpr int kTagData = 3;
  static constexpr int kTagStride = 4;

  // Exchange wire cost: keys only (provenance is reconstructed at the
  // receiver from the message's source and prov_base), plus a small
  // per-message header.
  static constexpr std::uint64_t kDataWireBytesPerKey = sizeof(Key);
  static constexpr std::uint64_t kChunkHeaderBytes = 16;
  // Receiver-side storage per element: key + provenance record.
  static constexpr std::uint64_t kStoredBytesPerItem =
      sizeof(Key) + kProvenanceBytes;

  DistributedSorter(Cluster& cluster, SortConfig cfg, int sort_id = 0,
                    Comp comp = {})
      : cluster_(cluster), cfg_(cfg), base_tag_(sort_id * kTagStride),
        comp_(comp) {
    const std::size_t p = cluster_.size();
    input_.resize(p);
    output_.resize(p);
    stats_.machines.resize(p);
    metrics_.resize(p);
  }

  // Installs per-machine input shards (must be called before the cluster
  // run that executes machine_program).
  void set_input(std::vector<std::vector<Key>> shards) {
    PGXD_CHECK(shards.size() == cluster_.size());
    input_ = std::move(shards);
  }

  // Convenience: install shards, run this sort alone on the cluster, and
  // finalize statistics.
  void run(std::vector<std::vector<Key>> shards) {
    set_input(std::move(shards));
    const sim::SimTime elapsed = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    finalize(elapsed);
  }

  // Per-machine pipeline; exposed so callers can co-schedule several sorts
  // (see sort_simultaneously) — call finalize() with the run's elapsed time
  // afterwards.
  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    auto& sim = cluster_.simulator();
    auto& mem = m.memory();
    MachineStats& ms = stats_.machines[rank];
    obs::MetricsRegistry& reg = metrics_[rank];
    const bool telemetry = cfg_.telemetry;
    sim::SimTime mark = sim.now();
    // Closes the current paper step: per-step timing, a trace span tagged
    // with the bytes the step moved, and (telemetry on) a step-duration
    // gauge in the rank's registry.
    auto stamp = [&](Step s, std::uint64_t bytes = 0) {
      ms.steps[s] = sim.now() - mark;
      if (trace_) trace_->record(rank, step_name(s), mark, sim.now(), bytes);
      if (telemetry) {
        reg.gauge(std::string("sort.step.") + step_metric_suffix(s) + "_ns")
            .set(static_cast<double>(ms.steps[s]));
        reg.counter(std::string("sort.step.") + step_metric_suffix(s) +
                    "_bytes")
            .inc(bytes);
      }
      mark = sim.now();
    };

    // ---- Step 1: local sort ------------------------------------------------
    // Provenance convention: an element's previous location is its position
    // in its previous machine's *locally sorted* sequence (what the
    // exchange actually ships; receivers reconstruct indices from chunk
    // offsets, so provenance never rides the wire).
    const std::size_t n = input_[rank].size();
    std::vector<Key> local = input_[rank];
    {
      // Scratch for the in-node sort (the Fig. 2 ping-pong buffer).
      rt::TempAlloc scratch_mem(mem, n * sizeof(Key));
      sort::quicksort(std::span<Key>(local), comp_);
      co_await m.charge_local_parallel_sort(n);
    }
    if (telemetry) reg.counter("sort.local.items").inc(n);
    stamp(Step::kLocalSort, n * sizeof(Key));

    // ---- Step 2: regular samples to the master ------------------------------
    const std::uint64_t x_bytes =
        std::max<std::uint64_t>(1, cfg_.read_buffer_bytes / p);
    auto sample_count = static_cast<std::uint64_t>(
        static_cast<double>(x_bytes) * cfg_.sample_factor /
        static_cast<double>(sizeof(Key)));
    sample_count = std::clamp<std::uint64_t>(sample_count, 1, std::max<std::size_t>(n, 1));
    std::vector<Key> samples = sort::regular_samples<Key>(local, sample_count);
    ms.sample_count = samples.size();
    co_await m.charge_copy(samples.size());
    if (rank != kMaster) {
      // prov_base carries the shard size so the master can weight samples
      // from unequal shards (Spark's RangePartitioner does the same).
      const std::uint64_t bytes = samples.size() * sizeof(Key);
      note_control_bytes(bytes);
      co_await comm.send(rank, kMaster, tag(kTagSamples),
                         Msg::of_data(samples, n, 0), bytes);
    }
    if (telemetry) reg.counter("sort.sampling.samples").inc(samples.size());
    stamp(Step::kSampling, samples.size() * sizeof(Key));

    // ---- Step 3: master selects splitters, broadcast -------------------------
    if (rank == kMaster) {
      // Gather all sample vectors into the master's one read buffer. Each
      // sample represents shard_size/sample_count elements of its shard, so
      // splitter selection weights samples accordingly — shards may be of
      // very different sizes (e.g. graph partitions balanced by edges).
      std::vector<sort::WeightedSample<Key>> pool;
      auto add_samples = [&pool](const std::vector<Key>& keys,
                                 std::uint64_t shard_n) {
        if (keys.empty()) return;
        const double w = static_cast<double>(shard_n) /
                         static_cast<double>(keys.size());
        for (const auto& k : keys)
          pool.push_back(sort::WeightedSample<Key>{k, w});
      };
      add_samples(samples, n);
      // Wait for p-1 distinct sources, not p-1 messages: on a duplicating
      // fabric without reliable delivery a shard's samples can arrive
      // twice, and counting messages would starve another shard.
      std::vector<bool> sampled(p, false);
      sampled[kMaster] = true;
      for (std::size_t distinct = 1; distinct < p;) {
        auto msg = co_await comm.recv(kMaster, tag(kTagSamples));
        if (sampled[msg.src]) continue;
        sampled[msg.src] = true;
        ++distinct;
        add_samples(msg.payload.keys, msg.payload.prov_base);
      }
      {
        rt::TempAlloc pool_mem(mem, pool.size() * sizeof(Key) * 2);
        std::sort(pool.begin(), pool.end(),
                  [this](const sort::WeightedSample<Key>& a,
                         const sort::WeightedSample<Key>& b) {
                    return comp_(a.key, b.key);
                  });
        co_await m.compute_parallel(m.cost().sort_time(pool.size()));
        splitters_ = sort::select_splitters_weighted<Key, Comp>(pool, p, comp_);
      }
      for (std::size_t dst = 0; dst < p; ++dst) {
        const std::uint64_t bytes = splitters_.size() * sizeof(Key);
        if (dst != kMaster) note_control_bytes(bytes);
        comm.post(kMaster, dst, tag(kTagSplitters), Msg::of_keys(splitters_),
                  bytes);
      }
    }
    auto splitters_msg = co_await comm.recv(rank, tag(kTagSplitters));
    const std::vector<Key> splitters = std::move(splitters_msg.payload.keys);
    stamp(Step::kSplitterSelect, splitters.size() * sizeof(Key));

    // ---- Step 4: partition plan + counts broadcast ---------------------------
    PartitionPlan plan = plan_partition<Key, Comp>(
        local, splitters, cfg_.use_investigator, comp_);
    ms.searches = plan.searches;
    ms.duplicate_groups = plan.duplicate_groups;
    co_await m.charge_binary_search(n, plan.searches);

    const std::vector<std::uint64_t> send_counts = plan_sizes(plan);
    for (std::size_t dst = 0; dst < p; ++dst) {
      if (dst == rank) continue;
      const std::uint64_t bytes = p * sizeof(std::uint64_t);
      note_control_bytes(bytes);
      comm.post(rank, dst, tag(kTagCounts), Msg::of_counts(send_counts), bytes);
    }
    // Receive everyone's counts; recv_counts[src] = elements src sends us.
    // As with the sample gather, wait for distinct sources so duplicated
    // counts messages cannot starve a source.
    std::vector<std::uint64_t> recv_counts(p, 0);
    recv_counts[rank] = send_counts[rank];
    std::vector<bool> counted(p, false);
    counted[rank] = true;
    for (std::size_t distinct = 1; distinct < p;) {
      auto msg = co_await comm.recv(rank, tag(kTagCounts));
      PGXD_CHECK(msg.payload.counts.size() == p);
      if (counted[msg.src]) continue;
      counted[msg.src] = true;
      ++distinct;
      recv_counts[msg.src] = msg.payload.counts[rank];
    }
    if (telemetry) {
      reg.counter("sort.plan.searches").inc(plan.searches);
      reg.counter("sort.plan.duplicate_groups").inc(plan.duplicate_groups);
    }
    stamp(Step::kPartitionPlan, p * sizeof(std::uint64_t));

    // ---- Step 5: simultaneous send/receive ---------------------------------
    // "each processor knows how much data it will receive ... by applying
    // offsets for each received data entry" — offsets per source rank:
    std::vector<std::size_t> offsets(p + 1, 0);
    for (std::size_t s = 0; s < p; ++s)
      offsets[s + 1] = offsets[s] + recv_counts[s];
    const std::size_t total_recv = offsets[p];

    auto& out = output_[rank];
    out.resize(total_recv);
    // Result keys + provenance live to the end of the sort: persistent.
    mem.alloc_persistent(total_recv * kStoredBytesPerItem);

    const std::uint64_t chunk_elems =
        cfg_.buffered_exchange
            ? std::max<std::uint64_t>(1, cfg_.read_buffer_bytes / kDataWireBytesPerKey)
            : std::numeric_limits<std::uint64_t>::max();

    // Per-source write cursors; arrival order across sources is irrelevant.
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);

    // SoA exchange+merge path: the receiver stores bare keys at their final
    // offsets plus one range-start per source, merges keys with a compact
    // u32 permutation, and materializes Item records (key + reconstructed
    // provenance) once at the very end. Item records are built per element
    // in the AoS path instead. Falls back to AoS for the k-way ablation and
    // for partitions beyond u32 indexing.
    const bool soa = cfg_.soa_final_merge && cfg_.balanced_final_merge &&
                     total_recv <= std::numeric_limits<std::uint32_t>::max();
    const bool use_pool = cfg_.use_buffer_pool;
    // PGX.D keeps a fixed set of request buffers per machine; this is the
    // cluster-wide equivalent (the pool is shared — one address space).
    // Once this many leases are outstanding and the free list is dry, a
    // sender must recycle an arrived chunk before leasing another, which
    // bounds exchange allocations at O(p) instead of O(chunks).
    const std::int64_t pool_cap =
        static_cast<std::int64_t>(std::max<std::size_t>(2 * p, 8));
    std::vector<Key> recv_keys;
    std::optional<rt::TempAlloc> recv_keys_mem;
    // src_lo[s]: start of the (s -> rank) range in s's locally sorted
    // sequence, learned from any of s's chunks (prov_base - rel_offset).
    // The provenance of the element at receive position q is then
    // src_lo[s] + (q - offsets[s]) for the s whose range contains q.
    std::vector<std::uint64_t> src_lo(p, 0);
    if (soa) {
      recv_keys.resize(total_recv);
      recv_keys_mem.emplace(mem, total_recv * sizeof(Key));
    }

    // Self range: a local memory move, not fabric traffic.
    {
      const std::size_t lo = plan.bounds[rank];
      const std::size_t hi = plan.bounds[rank + 1];
      if (soa) {
        src_lo[rank] = lo;
        std::copy(local.begin() + lo, local.begin() + hi,
                  recv_keys.begin() + offsets[rank]);
      } else {
        for (std::size_t i = lo; i < hi; ++i)
          out[offsets[rank] + (i - lo)] =
              ItemT{local[i], Provenance{static_cast<std::uint32_t>(rank), i}};
      }
      cursor[rank] += hi - lo;
      co_await m.charge_copy(hi - lo);
    }

    // Chunk dedup bitmap (replaces a per-source std::set of offsets): a
    // source's chunks sit at rel_offset = c * chunk_elems, so chunk c of
    // source s maps to bit c of that source's word range. O(p + chunks/64)
    // memory, zero allocations per chunk.
    std::vector<std::size_t> seen_base(p + 1, 0);
    for (std::size_t s = 0; s < p; ++s) {
      std::uint64_t nchunks = 0;
      if (s != rank && recv_counts[s] > 0)
        nchunks = cfg_.buffered_exchange
                      ? (recv_counts[s] + chunk_elems - 1) / chunk_elems
                      : 1;
      seen_base[s + 1] =
          seen_base[s] + static_cast<std::size_t>((nchunks + 63) / 64);
    }
    std::vector<std::uint64_t> seen_words(seen_base[p], 0);

    const std::size_t remote_expected = total_recv - recv_counts[rank];
    std::size_t remote_placed = 0;
    // Wire bytes this rank put on the fabric during the exchange (span
    // metadata for the send/receive step).
    std::uint64_t exchange_wire_sent = 0;

    // Hot-loop instruments, resolved once: per-chunk telemetry is then a
    // pointer-guarded integer add.
    obs::Counter* c_chunks_sent = nullptr;
    obs::Counter* c_chunks_recv = nullptr;
    obs::Counter* c_dup_chunks = nullptr;
    obs::Counter* c_items_sent = nullptr;
    obs::Counter* c_items_recv = nullptr;
    obs::Counter* c_wire_sent = nullptr;
    obs::LogHistogram* h_chunk_elems = nullptr;
    if (telemetry) {
      c_chunks_sent = &reg.counter("sort.exchange.chunks_sent");
      c_chunks_recv = &reg.counter("sort.exchange.chunks_received");
      c_dup_chunks = &reg.counter("sort.exchange.duplicate_chunks");
      c_items_sent = &reg.counter("sort.exchange.items_sent");
      c_items_recv = &reg.counter("sort.exchange.items_received");
      c_wire_sent = &reg.counter("sort.exchange.wire_bytes_sent");
      h_chunk_elems = &reg.histogram("sort.exchange.chunk_elems");
    }

    // Places one arriving chunk — dedup, copy to its final offset,
    // provenance/range-start bookkeeping, buffer return to the pool — and
    // returns the elements placed (0 for a duplicate). The caller charges
    // the simulated copy cost.
    auto place_chunk = [&](auto& msg) -> std::size_t {
      PGXD_CHECK(msg.src != rank);
      auto& keys = msg.payload.keys;
      const std::uint64_t cidx = msg.payload.rel_offset / chunk_elems;
      const std::size_t word =
          seen_base[msg.src] + static_cast<std::size_t>(cidx / 64);
      PGXD_CHECK_MSG(word < seen_base[msg.src + 1],
                     "chunk offset beyond its source's announced range");
      const std::uint64_t bit = std::uint64_t{1} << (cidx % 64);
      if (c_chunks_recv) c_chunks_recv->inc();
      if (seen_words[word] & bit) {
        ++ms.duplicate_chunks;
        if (c_dup_chunks) c_dup_chunks->inc();
        if (use_pool) pool_.release(std::move(keys));
        return 0;
      }
      seen_words[word] |= bit;
      const std::uint64_t base = msg.payload.prov_base;
      const std::size_t at = offsets[msg.src] + msg.payload.rel_offset;
      PGXD_CHECK_MSG(at + keys.size() <= offsets[msg.src + 1],
                     "chunk overruns its source's receive range");
      if (soa) {
        src_lo[msg.src] = base - msg.payload.rel_offset;
        std::copy(keys.begin(), keys.end(), recv_keys.begin() + at);
      } else {
        const auto src32 = static_cast<std::uint32_t>(msg.src);
        for (std::size_t i = 0; i < keys.size(); ++i)
          out[at + i] = ItemT{keys[i], Provenance{src32, base + i}};
      }
      const std::size_t placed = keys.size();
      cursor[msg.src] += placed;
      remote_placed += placed;
      if (c_items_recv) c_items_recv->inc(placed);
      if (use_pool) pool_.release(std::move(keys));
      return placed;
    };

    // Sends: lease a chunk buffer from the pool, pack it from a span slice
    // of the local array (one reserve either way), and post asynchronously
    // (async mode) or send blocking + barrier (bulk-synchronous ablation).
    // In async mode the loop also drains chunks that have already arrived —
    // the paper's "simultaneous asynchronous send/receive" — which both
    // overlaps the copies and returns buffers to the pool for re-lease.
    for (std::size_t step = 1; step < p; ++step) {
      // Ring order starting after own rank spreads incast across receivers.
      const std::size_t dst = (rank + step) % p;
      const std::size_t lo = plan.bounds[dst];
      const std::size_t hi = plan.bounds[dst + 1];
      for (std::size_t at = lo; at < hi;) {
        // Backpressure: with the pool dry and the outstanding cap reached,
        // block on a receive — placing the arrived chunk returns its buffer
        // — instead of allocating yet another. Deadlock-free: we only block
        // while peers still owe us data, and every outstanding buffer is in
        // flight to (or queued at) a machine that is still draining.
        while (use_pool && cfg_.async_exchange &&
               remote_placed < remote_expected && pool_.free_buffers() == 0 &&
               pool_.outstanding() >= pool_cap) {
          auto msg = co_await comm.recv(rank, tag(kTagData));
          const std::size_t placed = place_chunk(msg);
          if (placed > 0) co_await m.charge_copy(placed);
        }
        const std::size_t take =
            std::min<std::uint64_t>(hi - at, chunk_elems);
        const std::span<const Key> slice(local.data() + at, take);
        std::vector<Key> chunk =
            use_pool ? pool_.acquire(take) : std::vector<Key>();
        chunk.reserve(take);
        chunk.assign(slice.begin(), slice.end());
        const std::uint64_t bytes =
            take * kDataWireBytesPerKey + kChunkHeaderBytes;
        note_data_bytes(bytes);
        ms.sent_elements += take;
        exchange_wire_sent += bytes;
        if (c_chunks_sent) {
          c_chunks_sent->inc();
          c_items_sent->inc(take);
          c_wire_sent->inc(bytes);
          h_chunk_elems->add(take);
        }
        co_await m.charge_copy(take);  // pack the request buffer
        if (cfg_.async_exchange) {
          comm.post(rank, dst, tag(kTagData),
                    Msg::of_data(std::move(chunk), at, at - lo), bytes);
          while (remote_placed < remote_expected &&
                 comm.pending(rank, tag(kTagData)) > 0) {
            auto msg = co_await comm.recv(rank, tag(kTagData));
            const std::size_t placed = place_chunk(msg);
            if (placed > 0) co_await m.charge_copy(placed);
          }
        } else {
          co_await comm.send(rank, dst, tag(kTagData),
                             Msg::of_data(std::move(chunk), at, at - lo),
                             bytes);
        }
        at += take;
      }
    }
    if (!cfg_.async_exchange) co_await comm.barrier();

    // Receives: place each incoming chunk at its source's base offset plus
    // the chunk's own relative offset — correct under any arrival order —
    // discarding chunks whose (src, chunk index) bit was already set, so
    // the loop stays correct when a duplicating fabric redelivers a chunk.
    // It counts placed *elements*, not messages.
    while (remote_placed < remote_expected) {
      auto msg = co_await comm.recv(rank, tag(kTagData));
      const std::size_t placed = place_chunk(msg);
      if (placed > 0) co_await m.charge_copy(placed);
    }
    for (std::size_t s = 0; s < p; ++s)
      PGXD_CHECK_MSG(cursor[s] == offsets[s + 1],
                     "exchange delivered wrong element counts");
    ms.received_elements = total_recv;
    // The local pre-sorted array can be released now.
    local.clear();
    local.shrink_to_fit();
    stamp(Step::kExchange, exchange_wire_sent);

    // ---- Step 6: final balanced merge ---------------------------------------
    {
      std::vector<std::size_t> bounds(offsets.begin(), offsets.end());
      std::size_t nonempty_runs = 0;
      for (std::size_t s = 0; s < p; ++s)
        nonempty_runs += (recv_counts[s] > 0);
      if (soa) {
        // Keys + u32 permutation travel through the Fig. 2 tree (each level
        // moves sizeof(Key) + 4 bytes per element instead of sizeof(Item));
        // the output partition is then written directly from whichever
        // ping-pong buffer holds the result — no staging copy-back — with
        // provenance reconstructed from each element's pre-merge position q.
        std::vector<std::uint32_t> perm(total_recv);
        std::iota(perm.begin(), perm.end(), 0u);
        std::vector<Key> key_scratch;
        std::vector<std::uint32_t> perm_scratch;
        rt::TempAlloc scratch_mem(
            mem, total_recv * (sizeof(Key) + 2 * sizeof(std::uint32_t)));
        const auto res = sort::balanced_merge_soa(
            recv_keys, perm, std::move(bounds), key_scratch, perm_scratch,
            comp_);
        const std::vector<Key>& mk = res.in_scratch ? key_scratch : recv_keys;
        const std::vector<std::uint32_t>& mp =
            res.in_scratch ? perm_scratch : perm;
        for (std::size_t i = 0; i < total_recv; ++i) {
          const std::size_t q = mp[i];
          const std::size_t s =
              static_cast<std::size_t>(
                  std::upper_bound(offsets.begin(), offsets.end(), q) -
                  offsets.begin()) -
              1;
          out[i] = ItemT{mk[i], Provenance{static_cast<std::uint32_t>(s),
                                           src_lo[s] + (q - offsets[s])}};
        }
        co_await m.charge_balanced_merge(
            total_recv, std::max<std::size_t>(1, nonempty_runs));
      } else {
        std::vector<ItemT> scratch;
        rt::TempAlloc scratch_mem(mem, total_recv * sizeof(ItemT));
        auto item_less = [this](const ItemT& a, const ItemT& b) {
          return comp_(a.key, b.key);
        };
        if (cfg_.balanced_final_merge) {
          sort::balanced_merge(out, std::move(bounds), scratch, item_less);
          co_await m.charge_balanced_merge(
              total_recv, std::max<std::size_t>(1, nonempty_runs));
        } else {
          // Ablation: one sequential k-way loser-tree pass (real kernel).
          sort::kway_merge(out, bounds, scratch, item_less);
          co_await m.charge_naive_kway_merge(
              total_recv, std::max<std::size_t>(1, nonempty_runs));
        }
      }
    }
    recv_keys = std::vector<Key>();
    recv_keys_mem.reset();
    stamp(Step::kFinalMerge, total_recv * kStoredBytesPerItem);

    // ---- Exactly-once audit -------------------------------------------------
    // Provenance makes delivery auditable: for every source, the previous
    // indices present in the merged output must be recv_counts[src]
    // distinct contiguous integers — any drop, duplicate, or misplacement
    // by the exchange (or the reliable-delivery layer under fault
    // injection) breaks that. Pure host-side verification; costs no
    // simulated time.
    if (cfg_.audit_exchange) {
      std::vector<std::vector<std::uint64_t>> prev_indices(p);
      for (std::size_t s = 0; s < p; ++s) prev_indices[s].reserve(recv_counts[s]);
      for (const ItemT& item : out) {
        PGXD_CHECK(item.prov.prev_machine < p);
        prev_indices[item.prov.prev_machine].push_back(item.prov.prev_index);
      }
      for (std::size_t s = 0; s < p; ++s) {
        PGXD_CHECK_MSG(prev_indices[s].size() == recv_counts[s],
                       "exactly-once audit: received element count from a "
                       "source disagrees with its announced count");
        std::sort(prev_indices[s].begin(), prev_indices[s].end());
        for (std::size_t i = 1; i < prev_indices[s].size(); ++i)
          PGXD_CHECK_MSG(prev_indices[s][i] == prev_indices[s][i - 1] + 1,
                         "exactly-once audit: an element was duplicated or "
                         "lost in the exchange");
      }
    }

    ms.peak_persistent_bytes = mem.peak_persistent();
    ms.peak_temp_bytes = mem.peak_temp();
    if (telemetry) {
      reg.counter("sort.load.items").inc(total_recv);
      reg.counter("sort.load.bytes").inc(total_recv * kStoredBytesPerItem);
      reg.gauge("sort.memory.peak_persistent_bytes")
          .set(static_cast<double>(ms.peak_persistent_bytes));
      reg.gauge("sort.memory.peak_temp_bytes")
          .set(static_cast<double>(ms.peak_temp_bytes));
    }
    co_return;
  }

  // Aggregates per-machine stats; call after the cluster run completes.
  void finalize(sim::SimTime elapsed) {
    stats_.total_time = elapsed;
    stats_.steps_max = StepTimings{};
    for (const auto& ms : stats_.machines) stats_.steps_max.max_with(ms.steps);
    std::vector<std::uint64_t> sizes;
    sizes.reserve(output_.size());
    for (const auto& part : output_) sizes.push_back(part.size());
    stats_.balance = balance_report(sizes);
    stats_.splitters = splitters_;
    stats_.wire_bytes_total = wire_data_bytes_ + wire_control_bytes_;
    stats_.wire_bytes_samples = wire_control_bytes_;
    if (cfg_.telemetry) {
      // Fold the substrate's counters into the per-rank registries: NIC
      // traffic/fault counters, the comm layer's reliable-delivery stats
      // (rank 0), and the shared exchange buffer pool (rank 0 — the pool is
      // cluster-wide).
      for (std::size_t r = 0; r < metrics_.size(); ++r)
        cluster_.export_metrics(metrics_[r], r);
      const rt::BufferPoolStats& ps = pool_.stats();
      obs::MetricsRegistry& reg0 = metrics_[0];
      reg0.counter("sort.pool.leases").inc(ps.leases);
      reg0.counter("sort.pool.reuses").inc(ps.reuses);
      reg0.counter("sort.pool.fresh_allocs").inc(ps.fresh_allocs);
      reg0.counter("sort.pool.returns").inc(ps.returns);
      reg0.gauge("sort.pool.peak_free").set(static_cast<double>(ps.peak_free));
    }
  }

  const std::vector<std::vector<ItemT>>& partitions() const { return output_; }
  std::vector<std::vector<ItemT>>& mutable_partitions() { return output_; }
  const SortStats<Key>& stats() const { return stats_; }
  const SortConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  // Exchange buffer-pool counters (shared across the simulated machines,
  // which live in one address space).
  const rt::BufferPoolStats& pool_stats() const { return pool_.stats(); }

  // Per-rank telemetry (populated when SortConfig::telemetry is on).
  const obs::MetricsRegistry& metrics(std::size_t rank) const {
    return metrics_[rank];
  }
  const std::vector<obs::MetricsRegistry>& per_rank_metrics() const {
    return metrics_;
  }
  // Cluster-wide view: counters sum, gauges keep the max, histograms merge.
  obs::MetricsRegistry merged_metrics() const {
    return obs::merge_all(metrics_);
  }

  // Optional span tracing: each machine's step becomes a (lane, label,
  // begin, end, bytes) span — see sim::Trace::render_gantt and
  // obs::chrome_trace_json. Declares the cluster size as the lane count so
  // span-less ranks still show up.
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (trace_) trace_->set_lane_count(cluster_.size());
  }

 private:
  static constexpr std::size_t kMaster = 0;

  int tag(int t) const { return base_tag_ + t; }
  void note_control_bytes(std::uint64_t b) { wire_control_bytes_ += b; }
  void note_data_bytes(std::uint64_t b) { wire_data_bytes_ += b; }

  Cluster& cluster_;
  SortConfig cfg_;
  int base_tag_;
  Comp comp_;
  sim::Trace* trace_ = nullptr;
  std::vector<obs::MetricsRegistry> metrics_;  // one per rank
  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<ItemT>> output_;
  SortStats<Key> stats_;
  std::vector<Key> splitters_;
  std::uint64_t wire_control_bytes_ = 0;
  std::uint64_t wire_data_bytes_ = 0;
  // Exchange chunk buffers: leased by senders, returned by receivers. One
  // pool for the whole cluster — the simulation shares an address space, so
  // a buffer posted by machine A is the same storage machine B receives.
  rt::BufferPool<Key> pool_;
};

// Runs several sorters over the same cluster in one simulation — the
// paper's "sort multiple different data simultaneously". Each sorter must
// have a distinct sort_id and its input installed via set_input().
template <typename Key, typename Comp>
sim::SimTime sort_simultaneously(
    rt::Cluster<SortMsg<Key>>& cluster,
    std::vector<DistributedSorter<Key, Comp>*> sorters) {
  PGXD_CHECK(!sorters.empty());
  auto& sim = cluster.simulator();
  const sim::SimTime start = sim.now();
  for (std::size_t r = 0; r < cluster.size(); ++r)
    for (auto* sorter : sorters)
      sim.spawn(sorter->machine_program(cluster.machine(r)));
  sim.run();
  PGXD_CHECK_MSG(sim.quiescent(), "simultaneous sort deadlocked");
  const sim::SimTime elapsed = sim.now() - start;
  for (auto* sorter : sorters) sorter->finalize(elapsed);
  return elapsed;
}

}  // namespace pgxd::core
