#include "core/config.hpp"

#include <cstdlib>
#include <cstring>

namespace pgxd::core {

bool telemetry_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("PGXD_TELEMETRY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

const char* merge_algo_name(MergeAlgo a) {
  switch (a) {
    case MergeAlgo::kPairwiseTree: return "pairwise_tree";
    case MergeAlgo::kParallelKway: return "parallel_kway";
    case MergeAlgo::kSequentialKway: return "sequential_kway";
  }
  return "unknown";
}

const char* local_sort_algo_name(LocalSortAlgo a) {
  switch (a) {
    case LocalSortAlgo::kComparison: return "comparison";
    case LocalSortAlgo::kRadix: return "radix";
    case LocalSortAlgo::kAdaptive: return "adaptive";
  }
  return "unknown";
}

const char* partition_scheme_name(PartitionScheme s) {
  switch (s) {
    case PartitionScheme::kOneLevelSample: return "one-level-sample";
    case PartitionScheme::kHistogramRefine: return "histogram-refine";
    case PartitionScheme::kTwoLevelAms: return "two-level-ams";
  }
  return "unknown";
}

std::string SortConfig::validate() const {
  if (partition_epsilon <= 0.0 || partition_epsilon > 1.0)
    return "invalid SortConfig: partition_epsilon must be in (0, 1]";
  if (partition_max_rounds < 1)
    return "invalid SortConfig: partition_max_rounds must be >= 1";
  if (partition == PartitionScheme::kTwoLevelAms && !async_exchange)
    return "invalid SortConfig: kTwoLevelAms requires async_exchange (the "
           "level-1 group exchange is send-while-receive by construction)";
  if (partition == PartitionScheme::kHistogramRefine && sample_factor <= 0.0)
    return "invalid SortConfig: kHistogramRefine requires a positive "
           "sample_factor to seed the refinement";
  return {};
}

const char* step_name(Step s) {
  switch (s) {
    case Step::kLocalSort: return "local-sort";
    case Step::kSampling: return "sampling";
    case Step::kSplitterSelect: return "splitter-select";
    case Step::kPartitionPlan: return "partition-plan";
    case Step::kExchange: return "send/receive";
    case Step::kFinalMerge: return "final-merge";
  }
  return "unknown";
}

const char* step_metric_suffix(Step s) {
  switch (s) {
    case Step::kLocalSort: return "local_sort";
    case Step::kSampling: return "sampling";
    case Step::kSplitterSelect: return "splitter_select";
    case Step::kPartitionPlan: return "partition_plan";
    case Step::kExchange: return "exchange";
    case Step::kFinalMerge: return "final_merge";
  }
  return "unknown";
}

}  // namespace pgxd::core
