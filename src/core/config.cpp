#include "core/config.hpp"

namespace pgxd::core {

const char* step_name(Step s) {
  switch (s) {
    case Step::kLocalSort: return "local-sort";
    case Step::kSampling: return "sampling";
    case Step::kSplitterSelect: return "splitter-select";
    case Step::kPartitionPlan: return "partition-plan";
    case Step::kExchange: return "send/receive";
    case Step::kFinalMerge: return "final-merge";
  }
  return "unknown";
}

}  // namespace pgxd::core
