// In-simulation distributed queries over sorted, distributed data — the
// "high-level API exposed to the user" the paper advertises (Sec. III:
// "retrieving top values from their graph data or implementing binary
// search on the sorted data"), executed as cluster programs so their cost
// (broadcast, local search, reply) is measured on the same fabric as the
// sort. For zero-cost, host-side inspection use SortedSequence instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/api.hpp"
#include "core/distributed_sort.hpp"
#include "runtime/cluster.hpp"
#include "sort/comparator.hpp"

namespace pgxd::core {

template <typename Key>
struct QueryMsg {
  std::vector<Key> keys;
  std::vector<std::uint64_t> counts;

  // User-declared constructors are load-bearing; see the note on
  // rt::Message about GCC 12 and aggregate temporaries in co_await.
  QueryMsg() = default;
  QueryMsg(std::vector<Key> k, std::vector<std::uint64_t> c)
      : keys(std::move(k)), counts(std::move(c)) {}
};

template <typename Key>
struct QueryResult {
  std::optional<Location> found;   // distributed_find
  std::uint64_t count = 0;         // distributed_count
  std::vector<Key> top;            // distributed_top_k, descending
  sim::SimTime elapsed = 0;        // simulated query latency
};

// Runs distributed queries against the partitions produced by a
// DistributedSorter. The cluster must be the one that produced them (or an
// identically-sized one); rank 0 coordinates.
template <typename Key, typename Comp = sort::Less>
class DistributedQueries {
 public:
  using Msg = QueryMsg<Key>;
  using Cluster = rt::Cluster<Msg>;
  using ItemT = Item<Key>;

  static constexpr int kTagRequest = 200;
  static constexpr int kTagReply = 201;

  DistributedQueries(Cluster& cluster,
                     const std::vector<std::vector<ItemT>>& partitions,
                     Comp comp = {})
      : cluster_(cluster), parts_(&partitions), comp_(comp) {
    PGXD_CHECK(partitions.size() == cluster.size());
  }

  // First occurrence of `key` (machine, index) — a broadcast + local binary
  // search + gather of per-machine candidates.
  QueryResult<Key> find(const Key& key) {
    QueryResult<Key> result;
    const sim::SimTime elapsed = cluster_.run([&](rt::Machine& m) {
      return find_program(m, key, result);
    });
    result.elapsed = elapsed;
    return result;
  }

  // Number of elements equal to `key` across the cluster.
  QueryResult<Key> count(const Key& key) {
    QueryResult<Key> result;
    const sim::SimTime elapsed = cluster_.run([&](rt::Machine& m) {
      return count_program(m, key, result);
    });
    result.elapsed = elapsed;
    return result;
  }

  // Largest k keys, descending. Machines contribute only their local top-k
  // (k * p candidate keys travel, not the dataset).
  QueryResult<Key> top_k(std::size_t k) {
    QueryResult<Key> result;
    const sim::SimTime elapsed = cluster_.run([&](rt::Machine& m) {
      return top_k_program(m, k, result);
    });
    result.elapsed = elapsed;
    return result;
  }

  // The element at quantile q in [0, 1] (q=0.5 is the median). Because the
  // data is already range-partitioned, this needs only a size gather at the
  // coordinator plus one indexed read on the owning machine — no scan.
  QueryResult<Key> quantile(double q) {
    PGXD_CHECK(q >= 0.0 && q <= 1.0);
    QueryResult<Key> result;
    const sim::SimTime elapsed = cluster_.run([&](rt::Machine& m) {
      return quantile_program(m, q, result);
    });
    result.elapsed = elapsed;
    return result;
  }

 private:
  static constexpr std::size_t kCoordinator = 0;

  sim::Task<void> find_program(rt::Machine& m, Key key,
                               QueryResult<Key>& result) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const auto& part = (*parts_)[rank];

    // Local binary search; index or "miss" (sentinel = part.size()).
    const auto it = std::lower_bound(
        part.begin(), part.end(), key,
        [this](const ItemT& a, const Key& k) { return comp_(a.key, k); });
    co_await m.charge_binary_search(part.size(), 1);
    const bool hit = it != part.end() && !comp_(key, it->key);
    const auto idx = static_cast<std::uint64_t>(it - part.begin());

    if (rank != kCoordinator) {
      comm.post(rank, kCoordinator, kTagReply,
                Msg({}, {hit ? 1u : 0u, idx}), 2 * sizeof(std::uint64_t));
      co_return;
    }

    // Coordinator: gather all replies, pick the lowest-ranked hit (global
    // order makes it the first occurrence).
    std::optional<Location> best;
    if (hit) best = Location{rank, static_cast<std::size_t>(idx)};
    std::vector<std::pair<std::size_t, std::uint64_t>> hits;
    for (std::size_t i = 0; i + 1 < p; ++i) {
      auto msg = co_await comm.recv(kCoordinator, kTagReply);
      if (msg.payload.counts[0] == 1)
        hits.emplace_back(msg.src, msg.payload.counts[1]);
    }
    std::sort(hits.begin(), hits.end());
    if (!hits.empty() && (!best || hits.front().first < best->machine))
      best = Location{hits.front().first,
                      static_cast<std::size_t>(hits.front().second)};
    result.found = best;
  }

  sim::Task<void> count_program(rt::Machine& m, Key key,
                                QueryResult<Key>& result) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const auto& part = (*parts_)[rank];

    const auto lo = std::lower_bound(
        part.begin(), part.end(), key,
        [this](const ItemT& a, const Key& k) { return comp_(a.key, k); });
    const auto hi = std::upper_bound(
        part.begin(), part.end(), key,
        [this](const Key& k, const ItemT& a) { return comp_(k, a.key); });
    co_await m.charge_binary_search(part.size(), 2);
    const auto local = static_cast<std::uint64_t>(hi - lo);

    if (rank != kCoordinator) {
      comm.post(rank, kCoordinator, kTagReply, Msg({}, {local}),
                sizeof(std::uint64_t));
      co_return;
    }
    std::uint64_t total = local;
    for (std::size_t i = 0; i + 1 < p; ++i) {
      auto msg = co_await comm.recv(kCoordinator, kTagReply);
      total += msg.payload.counts[0];
    }
    result.count = total;
  }

  sim::Task<void> top_k_program(rt::Machine& m, std::size_t k,
                                QueryResult<Key>& result) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const auto& part = (*parts_)[rank];

    // Local top-k: the tail of the sorted partition, descending.
    std::vector<Key> local;
    local.reserve(std::min(k, part.size()));
    for (std::size_t i = part.size(); i-- > 0 && local.size() < k;)
      local.push_back(part[i].key);
    co_await m.charge_copy(local.size());

    if (rank != kCoordinator) {
      const std::uint64_t bytes = local.size() * sizeof(Key);
      comm.post(rank, kCoordinator, kTagReply, Msg(std::move(local), {}),
                bytes);
      co_return;
    }
    // Coordinator: merge candidate lists, keep the global top-k.
    std::vector<Key> pool = std::move(local);
    for (std::size_t i = 0; i + 1 < p; ++i) {
      auto msg = co_await comm.recv(kCoordinator, kTagReply);
      pool.insert(pool.end(), msg.payload.keys.begin(),
                  msg.payload.keys.end());
    }
    std::sort(pool.begin(), pool.end(),
              [this](const Key& a, const Key& b) { return comp_(b, a); });
    co_await m.compute_parallel(m.cost().sort_time(pool.size()));
    if (pool.size() > k) pool.resize(k);
    result.top = std::move(pool);
  }

  sim::Task<void> quantile_program(rt::Machine& m, double q,
                                   QueryResult<Key>& result) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const auto& part = (*parts_)[rank];

    // Gather partition sizes at the coordinator.
    if (rank != kCoordinator) {
      comm.post(rank, kCoordinator, kTagReply,
                Msg({}, {static_cast<std::uint64_t>(part.size())}),
                sizeof(std::uint64_t));
      // The owner of the target rank answers a follow-up request; everyone
      // listens for either a request or a "not you" release.
      auto req = co_await comm.recv(rank, kTagRequest);
      if (req.payload.counts[0] == 1) {
        const std::size_t idx = req.payload.counts[1];
        PGXD_CHECK(idx < part.size());
        Msg reply({part[idx].key}, {static_cast<std::uint64_t>(rank), idx});
        co_await m.charge_binary_search(part.size(), 1);
        comm.post(rank, kCoordinator, kTagReply, std::move(reply),
                  sizeof(Key) + 16);
      }
      co_return;
    }

    std::vector<std::uint64_t> sizes(p, 0);
    sizes[rank] = part.size();
    std::uint64_t total = part.size();
    for (std::size_t i = 0; i + 1 < p; ++i) {
      auto msg = co_await comm.recv(kCoordinator, kTagReply);
      sizes[msg.src] = msg.payload.counts[0];
      total += msg.payload.counts[0];
    }
    if (total == 0) co_return;  // empty dataset: found stays nullopt

    // Global rank of the quantile, then its owning machine + local index.
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1) + 0.5);
    std::size_t owner = 0;
    while (owner < p && target >= sizes[owner]) {
      target -= sizes[owner];
      ++owner;
    }
    PGXD_CHECK(owner < p);

    // Release the non-owners; ask the owner for its element.
    for (std::size_t dst = 0; dst < p; ++dst) {
      if (dst == kCoordinator) continue;
      const bool is_owner = dst == owner;
      comm.post(kCoordinator, dst, kTagRequest,
                Msg({}, {is_owner ? 1u : 0u, target}), 16);
    }
    if (owner == kCoordinator) {
      result.found = Location{owner, static_cast<std::size_t>(target)};
      result.top.push_back(part[target].key);
    } else {
      auto reply = co_await comm.recv(kCoordinator, kTagReply);
      result.found =
          Location{owner, static_cast<std::size_t>(reply.payload.counts[1])};
      result.top.push_back(reply.payload.keys[0]);
    }
  }

  Cluster& cluster_;
  const std::vector<std::vector<ItemT>>* parts_;
  Comp comp_;
};

}  // namespace pgxd::core
