// Provenance bookkeeping: after the sort, every element knows which
// processor it came from and at which local index it lived (Sec. IV: "all
// data is merged together while keeping information regards to their
// previous processors and locations"). This is also what Fig. 11's memory
// accounting attributes the persistent overhead to.
//
// Convention: `prev_index` is the element's position in its previous
// machine's *locally sorted* sequence (the state the exchange ships).
// Receivers reconstruct it from each chunk's source rank and base offset,
// so provenance costs memory on the receiver but zero bytes on the wire.
// Exception: the two-level (AMS) scheme's group exchange, where the
// level-1 hop destroys contiguity — there each chunk carries packed
// origins explicitly, treated as audit metadata outside the modeled wire
// volume (see distributed_sort.hpp's pack_prov).
#pragma once

#include <cstdint>

namespace pgxd::core {

struct Provenance {
  std::uint32_t prev_machine = 0;
  std::uint64_t prev_index = 0;

  friend bool operator==(const Provenance&, const Provenance&) = default;
};

// Wire size of one element's provenance record (packed u32 + u64).
inline constexpr std::uint64_t kProvenanceBytes = 12;

}  // namespace pgxd::core
