// Post-sort query API — the "high-level API exposed to the user" the paper
// advertises: binary search over the distributed sorted data, locating an
// element's previous processor/index, top-k retrieval, and per-machine key
// ranges (Table III).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/distributed_sort.hpp"
#include "sort/comparator.hpp"

namespace pgxd::core {

// Global position of an element in the distributed sorted sequence.
struct Location {
  std::size_t machine = 0;
  std::size_t index = 0;  // within that machine's partition

  friend bool operator==(const Location&, const Location&) = default;
};

// Read-only view over the sorted, distributed output of a DistributedSorter.
// Smaller keys live on smaller machine ids (the sort's postcondition), so
// global order is (machine, index) lexicographic.
template <typename Key, typename Comp = sort::Less>
class SortedSequence {
 public:
  using ItemT = Item<Key>;

  explicit SortedSequence(const std::vector<std::vector<ItemT>>& partitions,
                          Comp comp = {})
      : parts_(&partitions), comp_(comp) {
    prefix_.reserve(partitions.size() + 1);
    prefix_.push_back(0);
    for (const auto& p : partitions) prefix_.push_back(prefix_.back() + p.size());
  }

  std::uint64_t size() const { return prefix_.back(); }
  std::size_t machines() const { return parts_->size(); }
  std::uint64_t partition_size(std::size_t m) const {
    return (*parts_)[m].size();
  }

  // Element at a global rank.
  const ItemT& at(std::uint64_t global_index) const {
    PGXD_CHECK(global_index < size());
    const auto it =
        std::upper_bound(prefix_.begin(), prefix_.end(), global_index);
    const auto m = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    return (*parts_)[m][global_index - prefix_[m]];
  }

  // First element with key == `key` (distributed binary search).
  std::optional<Location> find(const Key& key) const {
    const auto [loc, global] = lower_bound(key);
    if (global == size()) return std::nullopt;
    const ItemT& item = (*parts_)[loc.machine][loc.index];
    if (comp_(key, item.key)) return std::nullopt;  // key < item.key
    return loc;
  }

  // (location, global rank) of the first element >= key.
  std::pair<Location, std::uint64_t> lower_bound(const Key& key) const {
    for (std::size_t m = 0; m < parts_->size(); ++m) {
      const auto& part = (*parts_)[m];
      if (part.empty()) continue;
      if (comp_(part.back().key, key)) continue;  // whole partition < key
      const auto it = std::lower_bound(
          part.begin(), part.end(), key,
          [this](const ItemT& a, const Key& k) { return comp_(a.key, k); });
      const auto idx = static_cast<std::size_t>(it - part.begin());
      if (idx < part.size())
        return {Location{m, idx}, prefix_[m] + idx};
    }
    return {Location{parts_->size(), 0}, size()};
  }

  // Number of elements equal to key.
  std::uint64_t count(const Key& key) const {
    std::uint64_t total = 0;
    for (const auto& part : *parts_) {
      const auto lo = std::lower_bound(
          part.begin(), part.end(), key,
          [this](const ItemT& a, const Key& k) { return comp_(a.key, k); });
      const auto hi = std::upper_bound(
          part.begin(), part.end(), key,
          [this](const Key& k, const ItemT& a) { return comp_(k, a.key); });
      total += static_cast<std::uint64_t>(hi - lo);
    }
    return total;
  }

  // Largest k elements, descending — "retrieving top values from their
  // graph data". Walks partitions from the top machine down.
  std::vector<ItemT> top_k(std::size_t k) const {
    std::vector<ItemT> out;
    out.reserve(std::min<std::uint64_t>(k, size()));
    for (std::size_t m = parts_->size(); m-- > 0 && out.size() < k;) {
      const auto& part = (*parts_)[m];
      for (std::size_t i = part.size(); i-- > 0 && out.size() < k;)
        out.push_back(part[i]);
    }
    return out;
  }

  // [min, max] keys held by machine m; nullopt when the partition is empty.
  std::optional<std::pair<Key, Key>> machine_range(std::size_t m) const {
    const auto& part = (*parts_)[m];
    if (part.empty()) return std::nullopt;
    return std::make_pair(part.front().key, part.back().key);
  }

 private:
  const std::vector<std::vector<ItemT>>* parts_;
  Comp comp_;
  std::vector<std::uint64_t> prefix_;
};

}  // namespace pgxd::core
