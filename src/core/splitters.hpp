// Partition planning — step (4) of the pipeline: binary search of the
// received splitters on locally sorted data, with the paper's
// *investigator* for duplicated splitters (Fig. 3).
//
// Plain plan (Fig. 3a/3b): bound[j] = lower_bound(splitter[j]); every
// element in [bound[j], bound[j+1]) is sent to processor j. When many
// splitters are equal (duplicate-heavy data), all their bounds coincide:
// the processors between duplicates receive nothing and one processor
// receives the whole duplicate run (Fig. 3b).
//
// Investigator plan (Fig. 3c): binary search executes once per *distinct*
// splitter; for a group of d equal splitters the duplicate run
// [lower_bound(v), upper_bound(v)) is divided into d equal slices, one per
// duplicated splitter, restoring balance.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"

namespace pgxd::core {

struct PartitionPlan {
  // bounds.size() == parts + 1; destination j receives local elements
  // [bounds[j], bounds[j+1]).
  std::vector<std::size_t> bounds;
  // Number of binary searches executed (distinct splitters when the
  // investigator is on; all splitters otherwise). Feeds the cost model.
  std::size_t searches = 0;
  // Number of splitter groups the investigator subdivided.
  std::size_t duplicate_groups = 0;
};

// Computes the send ranges for `parts` destinations over locally sorted
// `keys` given `parts - 1` sorted splitters.
template <typename Key, typename Comp = sort::Less>
PartitionPlan plan_partition(std::span<const Key> keys,
                             std::span<const Key> splitters,
                             bool use_investigator, Comp comp = {}) {
  PGXD_DCHECK(std::is_sorted(keys.begin(), keys.end(), comp));
  PGXD_DCHECK(std::is_sorted(splitters.begin(), splitters.end(), comp));
  const std::size_t parts = splitters.size() + 1;
  PartitionPlan plan;
  plan.bounds.assign(parts + 1, 0);
  plan.bounds[parts] = keys.size();

  if (!use_investigator) {
    for (std::size_t j = 0; j < splitters.size(); ++j) {
      plan.bounds[j + 1] = static_cast<std::size_t>(
          std::lower_bound(keys.begin(), keys.end(), splitters[j], comp) -
          keys.begin());
      ++plan.searches;
    }
    return plan;
  }

  // Investigator: binary search runs once per *distinct* splitter value,
  // producing the feasible interval [lo, hi) of keys equal to it. Every
  // boundary whose splitter falls in that group is then placed at its
  // balanced target position — boundary j wants j/parts of the local data
  // below it — clamped into the feasible interval. Keys strictly below or
  // above the splitter value cannot move, but keys *equal* to it may land
  // on either side, which is exactly the freedom duplicated splitters
  // expose; the clamp divides a dominant duplicate run so that every
  // destination's total load (not just its slice of the run) is equal.
  // This reproduces Table II's near-exact 9.998% shares.
  const std::size_t n = keys.size();
  std::size_t j = 0;
  while (j < splitters.size()) {
    // Group [j, g) of splitters equal to splitters[j].
    std::size_t g = j + 1;
    while (g < splitters.size() && !comp(splitters[j], splitters[g])) ++g;
    const std::size_t d = g - j;

    const auto lo_it =
        std::lower_bound(keys.begin(), keys.end(), splitters[j], comp);
    const auto lo = static_cast<std::size_t>(lo_it - keys.begin());
    const auto hi = static_cast<std::size_t>(
        std::upper_bound(lo_it, keys.end(), splitters[j], comp) -
        keys.begin());
    plan.searches += 2;
    if (d > 1) ++plan.duplicate_groups;

    for (std::size_t i = 0; i < d; ++i) {
      const std::size_t target = (j + 1 + i) * n / parts;
      plan.bounds[j + 1 + i] = std::clamp(target, lo, hi);
    }
    j = g;
  }

  // Monotonicity can be violated only by a buggy comparator; check always.
  for (std::size_t b = 0; b < parts; ++b)
    PGXD_CHECK_MSG(plan.bounds[b] <= plan.bounds[b + 1],
                   "partition bounds must be non-decreasing");
  return plan;
}

// Sizes each destination receives under `plan`.
inline std::vector<std::uint64_t> plan_sizes(const PartitionPlan& plan) {
  std::vector<std::uint64_t> sizes(plan.bounds.size() - 1);
  for (std::size_t j = 0; j + 1 < plan.bounds.size(); ++j)
    sizes[j] = plan.bounds[j + 1] - plan.bounds[j];
  return sizes;
}

}  // namespace pgxd::core
