// SortReport: the flight recorder for one distributed sort run. One JSON
// document per run covering everything the paper's evaluation reports —
// phase timings (Fig. 7), per-rank load balance (Table II / Fig. 10),
// splitter quality vs the ideal p-quantiles, network/fault/retransmit
// counters from the fabric and the reliable-delivery layer, buffer-pool hit
// rates, and the full merged metrics registry.
//
// The schema is checked in at tools/report_schema.json and validated by
// tools/validate_report.py (scripts/check.sh telemetry).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/config.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/time.hpp"

namespace pgxd::core {

// Identifies the run; callers fill this in (the sorter does not know what
// workload fed it).
struct SortRunInfo {
  std::string engine = "pgxd";
  std::string distribution = "unknown";
  std::uint64_t n = 0;
  std::size_t machines = 0;
  std::uint64_t seed = 0;
};

// One paper step, aggregated across ranks.
struct PhaseReport {
  std::string name;    // Fig. 7 display name (step_name)
  std::string metric;  // metric suffix (step_metric_suffix)
  sim::SimTime min_ns = 0;
  sim::SimTime max_ns = 0;
  double mean_ns = 0.0;
};

// Per-rank load summary for one unit (items or bytes).
struct LoadReport {
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  // Table II's balance figure; min is clamped to 1 so an empty partition
  // reads as "maximally imbalanced" rather than dividing by zero.
  double max_over_min = 0.0;
  double imbalance = 0.0;  // max / ideal, 1.0 == perfect
};

// Splitter quality: how far each realized partition boundary lands from the
// ideal i*N/p quantile, as a fraction of N.
struct SplitterReport {
  std::vector<double> boundary_error;  // i = 1 .. p-1
  double max_error = 0.0;
  double mean_error = 0.0;
};

// Partitioning-scheme outcome: which strategy produced the splitters and
// what it cost / certified. Always emitted; the one-level baseline reads as
// rounds=1, groups=1, probe_keys=0, level1_items=0.
struct PartitionReport {
  std::string scheme = "one-level-sample";
  std::uint64_t rounds = 1;
  double epsilon_target = 0.0;
  double achieved_epsilon = 0.0;
  std::uint64_t groups = 1;
  std::uint64_t sample_keys = 0;
  std::uint64_t probe_keys = 0;
  std::uint64_t level1_items = 0;
};

struct NetworkReport {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;      // injected fabric faults
  std::uint64_t messages_duplicated = 0;   // injected fabric faults
  std::uint64_t retransmits = 0;           // reliable-delivery resends
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_suppressed = 0; // reliable layer
  std::uint64_t duplicate_chunks = 0;      // application-level discards
};

struct PoolReport {
  std::uint64_t leases = 0;
  std::uint64_t reuses = 0;
  std::uint64_t fresh_allocs = 0;
  std::uint64_t returns = 0;
  double hit_rate = 0.0;  // reuses / leases
};

// Crash-recovery outcome of the run. Always emitted: a clean run reads as
// enabled=false with all-zero counters and final_members == machines, so
// report consumers never branch on the section's presence.
struct RecoveryReport {
  bool enabled = false;
  std::uint64_t recoveries = 0;
  std::int64_t final_attempt = 0;
  std::uint64_t final_members = 0;
  std::uint64_t regenerated_shards = 0;
  std::uint64_t abort_broadcasts = 0;
  std::uint64_t hedged_rerequests = 0;
  std::uint64_t hedged_chunks_resent = 0;
  std::uint64_t detector_suspicions = 0;
  std::uint64_t detector_heartbeats_sent = 0;
  sim::SimTime wasted_work_ns = 0;
  sim::SimTime time_to_recover_max_ns = 0;
  double time_to_recover_mean_ns = 0.0;
};

// Runtime wait-for-graph summary: how often ranks blocked, what they
// blocked on, and how many incremental deadlock checks ran. A run that
// reaches the report by definition did not deadlock, so `deadlocks` is
// zero here; the counter exists because the same Stats struct feeds the
// abort diagnostic when a run does deadlock.
struct WaitReport {
  std::uint64_t mailbox_waits = 0;
  std::uint64_t barrier_waits = 0;
  std::uint64_t pool_waits = 0;    // annotation edges under pool backpressure
  std::uint64_t holds_added = 0;
  std::uint64_t deadlock_checks = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t max_blocked = 0;   // peak simultaneously-blocked ranks
};

struct SortReport {
  SortRunInfo run;
  sim::SimTime total_time_ns = 0;
  std::vector<PhaseReport> phases;  // the six Sec. IV steps, in order
  LoadReport items;
  LoadReport bytes;
  SplitterReport splitters;
  PartitionReport partition;
  NetworkReport network;
  PoolReport pool;
  RecoveryReport recovery;
  WaitReport waits;
  // Causal telemetry. Always emitted like recovery: a run without a trace
  // reads as critical_path.computed == false and an empty timeseries, so
  // the schema stays stable. Filled by the caller that owns the trace and
  // sampler (pgxd_sim, benches) after build_sort_report.
  obs::CriticalPathReport critical_path;
  obs::TimeSeriesDump timeseries;
  obs::MetricsRegistry metrics;  // cluster-wide merge of per-rank registries

  std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("run");
    w.begin_object();
    w.kv("engine", std::string_view(run.engine));
    w.kv("distribution", std::string_view(run.distribution));
    w.kv("n", run.n);
    w.kv("machines", static_cast<std::uint64_t>(run.machines));
    w.kv("seed", run.seed);
    w.end_object();
    w.kv("total_time_ns", static_cast<std::int64_t>(total_time_ns));
    w.key("phases");
    w.begin_array();
    for (const PhaseReport& p : phases) {
      w.begin_object();
      w.kv("name", std::string_view(p.name));
      w.kv("metric", std::string_view(p.metric));
      w.kv("min_ns", static_cast<std::int64_t>(p.min_ns));
      w.kv("max_ns", static_cast<std::int64_t>(p.max_ns));
      w.kv("mean_ns", p.mean_ns);
      w.end_object();
    }
    w.end_array();
    w.key("load");
    w.begin_object();
    auto write_load = [&w](const char* k, const LoadReport& l) {
      w.key(k);
      w.begin_object();
      w.kv("total", l.total);
      w.kv("min", l.min);
      w.kv("max", l.max);
      w.kv("mean", l.mean);
      w.kv("max_over_min", l.max_over_min);
      w.kv("imbalance", l.imbalance);
      w.end_object();
    };
    write_load("items", items);
    write_load("bytes", bytes);
    w.end_object();
    w.key("splitters");
    w.begin_object();
    w.key("boundary_error");
    w.begin_array();
    for (double e : splitters.boundary_error) w.value(e);
    w.end_array();
    w.kv("max_error", splitters.max_error);
    w.kv("mean_error", splitters.mean_error);
    w.end_object();
    w.key("partition");
    w.begin_object();
    w.kv("scheme", std::string_view(partition.scheme));
    w.kv("rounds", partition.rounds);
    w.kv("epsilon_target", partition.epsilon_target);
    w.kv("achieved_epsilon", partition.achieved_epsilon);
    w.kv("groups", partition.groups);
    w.kv("sample_keys", partition.sample_keys);
    w.kv("probe_keys", partition.probe_keys);
    w.kv("level1_items", partition.level1_items);
    w.end_object();
    w.key("network");
    w.begin_object();
    w.kv("bytes_sent", network.bytes_sent);
    w.kv("messages_sent", network.messages_sent);
    w.kv("messages_dropped", network.messages_dropped);
    w.kv("messages_duplicated", network.messages_duplicated);
    w.kv("retransmits", network.retransmits);
    w.kv("acks_received", network.acks_received);
    w.kv("duplicates_suppressed", network.duplicates_suppressed);
    w.kv("duplicate_chunks", network.duplicate_chunks);
    w.end_object();
    w.key("pool");
    w.begin_object();
    w.kv("leases", pool.leases);
    w.kv("reuses", pool.reuses);
    w.kv("fresh_allocs", pool.fresh_allocs);
    w.kv("returns", pool.returns);
    w.kv("hit_rate", pool.hit_rate);
    w.end_object();
    w.key("recovery");
    w.begin_object();
    w.kv("enabled", recovery.enabled);
    w.kv("recoveries", recovery.recoveries);
    w.kv("final_attempt", recovery.final_attempt);
    w.kv("final_members", recovery.final_members);
    w.kv("regenerated_shards", recovery.regenerated_shards);
    w.kv("abort_broadcasts", recovery.abort_broadcasts);
    w.kv("hedged_rerequests", recovery.hedged_rerequests);
    w.kv("hedged_chunks_resent", recovery.hedged_chunks_resent);
    w.kv("detector_suspicions", recovery.detector_suspicions);
    w.kv("detector_heartbeats_sent", recovery.detector_heartbeats_sent);
    w.kv("wasted_work_ns", static_cast<std::int64_t>(recovery.wasted_work_ns));
    w.kv("time_to_recover_max_ns",
         static_cast<std::int64_t>(recovery.time_to_recover_max_ns));
    w.kv("time_to_recover_mean_ns", recovery.time_to_recover_mean_ns);
    w.end_object();
    w.key("waits");
    w.begin_object();
    w.kv("mailbox_waits", waits.mailbox_waits);
    w.kv("barrier_waits", waits.barrier_waits);
    w.kv("pool_waits", waits.pool_waits);
    w.kv("holds_added", waits.holds_added);
    w.kv("deadlock_checks", waits.deadlock_checks);
    w.kv("deadlocks", waits.deadlocks);
    w.kv("max_blocked", waits.max_blocked);
    w.end_object();
    w.key("critical_path");
    critical_path.write_json(w);
    w.key("timeseries");
    timeseries.write_json(w);
    w.key("metrics");
    metrics.write_json(w);
    w.end_object();
    return w.str();
  }
};

// Builds the report from a finished sorter (duck-typed so this header does
// not need the full DistributedSorter definition: any engine exposing
// stats()/partitions()/pool_stats()/merged_metrics()/config() plus the
// kStoredBytesPerItem constant works). Phase timings, load balance, and
// splitter error come from the always-on SortStats; the network section and
// the metrics registry are only populated when the run had
// SortConfig::telemetry enabled (they read as zero/empty otherwise).
template <typename Sorter>
SortReport build_sort_report(const Sorter& sorter, SortRunInfo run) {
  SortReport rep;
  rep.run = std::move(run);
  const auto& stats = sorter.stats();
  rep.total_time_ns = stats.total_time;
  const std::size_t p = stats.machines.size();
  if (rep.run.machines == 0) rep.run.machines = p;

  for (std::size_t i = 0; i < kStepCount; ++i) {
    const Step s = static_cast<Step>(i);
    PhaseReport ph;
    ph.name = step_name(s);
    ph.metric = step_metric_suffix(s);
    ph.min_ns = p ? stats.machines[0].steps[s] : 0;
    double sum = 0.0;
    for (const auto& ms : stats.machines) {
      const sim::SimTime t = ms.steps[s];
      if (t < ph.min_ns) ph.min_ns = t;
      if (t > ph.max_ns) ph.max_ns = t;
      sum += static_cast<double>(t);
    }
    ph.mean_ns = p ? sum / static_cast<double>(p) : 0.0;
    rep.phases.push_back(std::move(ph));
  }

  // Load balance is judged against the membership that actually held data:
  // after a recovery onto survivors, a dead rank's empty partition would
  // otherwise drag the mean below every live rank's share.
  const std::size_t holders =
      stats.recovery.final_members ? stats.recovery.final_members : p;
  auto fill_load = [holders](LoadReport& l, std::uint64_t total,
                             std::uint64_t mn, std::uint64_t mx,
                             double ideal_denominator) {
    l.total = total;
    l.min = mn;
    l.max = mx;
    l.mean = holders ? static_cast<double>(total) /
                           static_cast<double>(holders)
                     : 0.0;
    l.max_over_min =
        static_cast<double>(mx) / static_cast<double>(mn > 0 ? mn : 1);
    l.imbalance = ideal_denominator > 0.0
                      ? static_cast<double>(mx) / ideal_denominator
                      : 0.0;
  };
  const auto& bal = stats.balance;
  const double ideal_items =
      holders ? static_cast<double>(bal.total) / static_cast<double>(holders)
              : 0.0;
  fill_load(rep.items, bal.total, bal.min_size, bal.max_size, ideal_items);
  constexpr std::uint64_t kBpi = Sorter::kStoredBytesPerItem;
  fill_load(rep.bytes, bal.total * kBpi, bal.min_size * kBpi,
            bal.max_size * kBpi, ideal_items * static_cast<double>(kBpi));

  const auto& parts = sorter.partitions();
  const double total_n = static_cast<double>(bal.total);
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    prefix += parts[i].size();
    const double ideal =
        total_n * static_cast<double>(i + 1) / static_cast<double>(p);
    const double err =
        total_n > 0.0
            ? std::fabs(static_cast<double>(prefix) - ideal) / total_n
            : 0.0;
    rep.splitters.boundary_error.push_back(err);
    if (err > rep.splitters.max_error) rep.splitters.max_error = err;
    rep.splitters.mean_error += err;
  }
  if (!rep.splitters.boundary_error.empty())
    rep.splitters.mean_error /=
        static_cast<double>(rep.splitters.boundary_error.size());

  const auto& pt = stats.partition;
  rep.partition.scheme = partition_scheme_name(pt.scheme);
  rep.partition.rounds = pt.rounds;
  rep.partition.epsilon_target = pt.epsilon_target;
  rep.partition.achieved_epsilon = pt.achieved_epsilon;
  rep.partition.groups = pt.groups;
  rep.partition.sample_keys = pt.sample_keys;
  rep.partition.probe_keys = pt.probe_keys;
  rep.partition.level1_items = pt.level1_items;

  rep.metrics = sorter.merged_metrics();
  const obs::MetricsRegistry& m = rep.metrics;
  rep.network.bytes_sent = m.counter_value("net.nic.bytes_sent");
  rep.network.messages_sent = m.counter_value("net.nic.messages_sent");
  rep.network.messages_dropped = m.counter_value("net.nic.messages_dropped");
  rep.network.messages_duplicated =
      m.counter_value("net.nic.messages_duplicated");
  rep.network.retransmits = m.counter_value("comm.reliable.retransmits");
  rep.network.acks_received = m.counter_value("comm.reliable.acks_received");
  rep.network.duplicates_suppressed =
      m.counter_value("comm.reliable.duplicates_suppressed");
  rep.network.duplicate_chunks =
      m.counter_value("sort.exchange.duplicate_chunks");

  const auto& rc = stats.recovery;
  rep.recovery.enabled = sorter.config().recovery.enabled;
  rep.recovery.recoveries = rc.recoveries;
  rep.recovery.final_attempt = rc.final_attempt;
  rep.recovery.final_members =
      rc.final_members ? static_cast<std::uint64_t>(rc.final_members)
                       : static_cast<std::uint64_t>(p);
  rep.recovery.regenerated_shards = rc.regenerated_shards;
  rep.recovery.abort_broadcasts = rc.abort_broadcasts;
  rep.recovery.hedged_rerequests = rc.hedged_rerequests;
  rep.recovery.hedged_chunks_resent = rc.hedged_chunks_resent;
  rep.recovery.detector_suspicions = m.counter_value("detector.suspicions");
  rep.recovery.detector_heartbeats_sent =
      m.counter_value("detector.heartbeats_sent");
  rep.recovery.wasted_work_ns = rc.wasted_work_ns;
  rep.recovery.time_to_recover_max_ns = rc.time_to_recover_max_ns;
  rep.recovery.time_to_recover_mean_ns =
      rc.recoveries ? static_cast<double>(rc.time_to_recover_total_ns) /
                          static_cast<double>(rc.recoveries)
                    : 0.0;

  const auto& ws = sorter.wait_stats();
  rep.waits.mailbox_waits = ws.mailbox_waits;
  rep.waits.barrier_waits = ws.barrier_waits;
  rep.waits.pool_waits = ws.pool_waits;
  rep.waits.holds_added = ws.holds_added;
  rep.waits.deadlock_checks = ws.deadlock_checks;
  rep.waits.deadlocks = ws.deadlocks;
  rep.waits.max_blocked = static_cast<std::uint64_t>(ws.max_blocked);

  const auto& ps = sorter.pool_stats();
  rep.pool.leases = ps.leases;
  rep.pool.reuses = ps.reuses;
  rep.pool.fresh_allocs = ps.fresh_allocs;
  rep.pool.returns = ps.returns;
  rep.pool.hit_rate =
      ps.leases ? static_cast<double>(ps.reuses) / static_cast<double>(ps.leases)
                : 0.0;
  return rep;
}

}  // namespace pgxd::core
