// Result validation for distributed sorts — the checks the test suite
// applies, packaged for library users and the CLI driver: per-partition
// order, global cross-machine order, permutation preservation (multiset
// equality against the input), and provenance integrity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/distributed_sort.hpp"
#include "sort/comparator.hpp"

namespace pgxd::core {

struct ValidationReport {
  bool partitions_sorted = false;   // each partition internally ordered
  bool globally_ordered = false;    // machine m's max <= machine m+1's min
  bool permutation_ok = false;      // output multiset == input multiset
  bool provenance_ok = false;       // every record points at a real source
  std::string failure;              // first failure description, if any

  bool ok() const {
    return partitions_sorted && globally_ordered && permutation_ok &&
           provenance_ok;
  }
};

// Validates sorter output against the original input shards. O(n log n)
// time and O(n) extra memory (copies both sides for the multiset check).
template <typename Key, typename Comp = sort::Less>
ValidationReport validate_sorted(
    const std::vector<std::vector<Item<Key>>>& partitions,
    const std::vector<std::vector<Key>>& input, Comp comp = {}) {
  ValidationReport report;

  // (a) per-partition order and (b) global order.
  report.partitions_sorted = true;
  report.globally_ordered = true;
  const Key* prev_max = nullptr;
  for (std::size_t m = 0; m < partitions.size(); ++m) {
    const auto& part = partitions[m];
    for (std::size_t i = 1; i < part.size(); ++i) {
      if (comp(part[i].key, part[i - 1].key)) {
        report.partitions_sorted = false;
        report.failure = "partition " + std::to_string(m) +
                         " unsorted at index " + std::to_string(i);
        return report;
      }
    }
    if (!part.empty()) {
      if (prev_max != nullptr && comp(part.front().key, *prev_max)) {
        report.globally_ordered = false;
        report.failure = "machine " + std::to_string(m) +
                         " starts below its predecessor's maximum";
        return report;
      }
      prev_max = &part.back().key;
    }
  }

  // (c) permutation.
  std::vector<Key> all_in, all_out;
  for (const auto& shard : input)
    all_in.insert(all_in.end(), shard.begin(), shard.end());
  for (const auto& part : partitions)
    for (const auto& item : part) all_out.push_back(item.key);
  if (all_in.size() != all_out.size()) {
    report.failure = "output has " + std::to_string(all_out.size()) +
                     " elements, input had " + std::to_string(all_in.size());
    return report;
  }
  std::sort(all_in.begin(), all_in.end(), comp);
  std::sort(all_out.begin(), all_out.end(), comp);
  for (std::size_t i = 0; i < all_in.size(); ++i) {
    if (comp(all_in[i], all_out[i]) || comp(all_out[i], all_in[i])) {
      report.failure = "output is not a permutation of the input (first "
                       "mismatch at sorted rank " + std::to_string(i) + ")";
      return report;
    }
  }
  report.permutation_ok = true;

  // (d) provenance: prev_index refers to the source machine's locally
  // sorted shard.
  std::vector<std::vector<Key>> sorted_shards = input;
  for (auto& shard : sorted_shards) std::sort(shard.begin(), shard.end(), comp);
  for (const auto& part : partitions) {
    for (const auto& item : part) {
      if (item.prov.prev_machine >= sorted_shards.size()) {
        report.failure = "provenance names machine " +
                         std::to_string(item.prov.prev_machine) +
                         " which does not exist";
        return report;
      }
      const auto& shard = sorted_shards[item.prov.prev_machine];
      if (item.prov.prev_index >= shard.size()) {
        report.failure = "provenance index out of range on machine " +
                         std::to_string(item.prov.prev_machine);
        return report;
      }
      const Key& src = shard[item.prov.prev_index];
      if (comp(src, item.key) || comp(item.key, src)) {
        report.failure = "provenance points at a different key";
        return report;
      }
    }
  }
  report.provenance_ok = true;
  return report;
}

}  // namespace pgxd::core
