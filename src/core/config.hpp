// Configuration and result types of the PGX.D distributed sort.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "runtime/buffered_writer.hpp"
#include "sim/time.hpp"
#include "sort/local_sort.hpp"
#include "sort/partition.hpp"

namespace pgxd::core {

// Final-merge strategy for step (6). All three run on real data; they only
// differ in data movement and intra-merge parallelism.
enum class MergeAlgo {
  // Fig. 2 pairwise balanced merge tree (the paper's handler): every
  // element moves once per level, ceil(log2 R) levels, merges parallel.
  kPairwiseTree,
  // Single-pass parallel loser-tree k-way merge
  // (sort/parallel_kway_merge.hpp): splitter search cuts the output into
  // per-thread ranges, each merged by one loser tree — one move per
  // element. Bit-identical output to the tree. The default.
  kParallelKway,
  // One sequential loser tree (the historical k-way ablation).
  kSequentialKway,
};
const char* merge_algo_name(MergeAlgo a);

// Local-sort strategy for step (1); the enum lives with the kernel in
// sort/local_sort.hpp.
using sort::LocalSortAlgo;
const char* local_sort_algo_name(LocalSortAlgo a);

// Partitioning strategy for steps (2)-(4); the enum and the pure strategy
// kernels live in sort/partition.hpp.
using sort::PartitionScheme;
const char* partition_scheme_name(PartitionScheme s);

// The six steps of Sec. IV, used to index StepTimings (Fig. 7).
enum class Step : std::size_t {
  kLocalSort = 0,       // (1) parallel quicksort + balanced merge
  kSampling = 1,        // (2) regular samples -> master
  kSplitterSelect = 2,  // (3) master selects splitters, broadcast (wait time
                        //     for non-master machines)
  kPartitionPlan = 3,   // (4) binary search + investigator + counts exchange
  kExchange = 4,        // (5) simultaneous send/receive of data ranges
  kFinalMerge = 5,      // (6) balanced merge of per-source runs
};
inline constexpr std::size_t kStepCount = 6;

const char* step_name(Step s);
// Metric-name-safe step suffix ("send/receive" -> "exchange"): step timings
// appear in the registry as sort.step.<suffix>_ns.
const char* step_metric_suffix(Step s);

// Default for SortConfig::telemetry: true when the PGXD_TELEMETRY
// environment variable is set to anything but "0" or empty. Lets
// scripts/check.sh run the whole test suite instrumented without touching
// any call site; explicit assignment always wins. Read once and cached.
bool telemetry_default();

struct StepTimings {
  std::array<sim::SimTime, kStepCount> t{};

  sim::SimTime& operator[](Step s) { return t[static_cast<std::size_t>(s)]; }
  sim::SimTime operator[](Step s) const { return t[static_cast<std::size_t>(s)]; }
  sim::SimTime total() const {
    sim::SimTime sum = 0;
    for (auto x : t) sum += x;
    return sum;
  }
  // Element-wise max; used to aggregate across machines.
  void max_with(const StepTimings& o) {
    for (std::size_t i = 0; i < kStepCount; ++i) t[i] = std::max(t[i], o.t[i]);
  }
};

// Crash-recovery policy for the sort (tentpole of the robustness layer).
// With recovery enabled the sorter runs every receive deadline-aware
// (polling for abort/control frames and failure-detector suspicion), and a
// host-side supervisor — the stand-in for the cluster scheduler — re-runs
// the sort on the surviving membership whenever a member crash-stops
// mid-attempt. Requires SortConfig::async_exchange (the bulk-synchronous
// ablation's full-cluster barrier cannot span a shrunk membership) and a
// cluster with reliable fail-fast delivery plus the failure detector.
struct RecoveryConfig {
  bool enabled = false;
  // Failed attempts the supervisor will re-run before declaring the sort
  // unrecoverable (attempts = 1 + max_recoveries).
  int max_recoveries = 3;
  // Fewer survivors than this is unrecoverable: a one-rank "cluster" could
  // technically sort, but the job's capacity contract is void.
  std::size_t min_members = 2;
  // Poll quantum for deadline-aware receives; 0 derives a default from the
  // failure detector's timeout (half of it, floored at 100us).
  sim::SimTime poll = 0;
  // Straggler hedging: when the exchange receive loop has waited longer
  // than max(hedge_floor, hedge_multiplier * q95 inter-chunk gap) with
  // chunks still missing, re-request them from the lagging senders instead
  // of riding out their full RTO backoff — a slow NIC degrades throughput
  // rather than stalling the merge barrier.
  bool hedge_rerequests = true;
  sim::SimTime hedge_floor = 2 * sim::kMillisecond;
  double hedge_multiplier = 4.0;
};

// Outcome of the recovery supervisor for one sort run; all zeros when no
// failure was ever detected (final_members == machine count then).
struct RecoveryStats {
  std::uint64_t recoveries = 0;          // failed attempts that were re-run
  int final_attempt = 0;                 // 0 = first attempt succeeded
  std::size_t final_members = 0;         // ranks that produced the output
  std::uint64_t regenerated_shards = 0;  // dead ranks' inputs rebuilt
  std::uint64_t abort_broadcasts = 0;    // abort fan-outs initiated
  std::uint64_t hedged_rerequests = 0;   // straggler re-request frames sent
  std::uint64_t hedged_chunks_resent = 0;
  // Simulated machine-time thrown away by aborted attempts (elapsed x
  // participating ranks, summed over failed attempts).
  sim::SimTime wasted_work_ns = 0;
  // Crash instant -> end of the aborted attempt, per failed attempt.
  sim::SimTime time_to_recover_total_ns = 0;
  sim::SimTime time_to_recover_max_ns = 0;
};

struct SortConfig {
  // The PGX.D read-buffer size; X = read_buffer_bytes / machines is the
  // per-processor sample budget (Sec. IV-B).
  std::uint64_t read_buffer_bytes = rt::kDefaultBufferBytes;
  // Sample size as a multiple of X (Fig. 9 sweeps 0.004 .. 1.4).
  double sample_factor = 1.0;
  // Fig. 3c duplicate-splitter investigator.
  bool use_investigator = true;
  // Final-merge strategy (see MergeAlgo). kParallelKway and kPairwiseTree
  // produce bit-identical output; kSequentialKway is the no-parallelism
  // ablation.
  MergeAlgo final_merge = MergeAlgo::kParallelKway;
  // Local-sort strategy for step (1): comparison sort, radix, or the
  // adaptive per-shard crossover (default). Non-integer keys and custom
  // comparators always take the comparison path.
  LocalSortAlgo local_sort = LocalSortAlgo::kAdaptive;
  // Legacy merge-ablation switch: false forces kSequentialKway regardless
  // of `final_merge` (the pre-strategy-enum CLI and tests flip this one
  // bool). Use effective_final_merge() when dispatching.
  bool balanced_final_merge = true;
  // Send-while-receive exchange; false = send everything, barrier, then
  // receive (bulk-synchronous ablation).
  bool async_exchange = true;
  // Stream exchange data in read-buffer-sized chunks through the data
  // manager; false sends each range as a single message.
  bool buffered_exchange = true;
  // Post-merge exactly-once audit: every element's provenance is checked to
  // appear exactly once (no chunk lost, duplicated, or misplaced by the
  // exchange). Cheap real work outside the simulated cost model.
  bool audit_exchange = true;
  // Structure-of-arrays final merge: bare keys plus a compact u32
  // permutation travel through the Fig. 2 tree and provenance is
  // reconstructed once at the end — each level moves sizeof(Key) + 4 bytes
  // per element instead of sizeof(Item). false = merge full Item records
  // (ablation). Only applies with balanced_final_merge; partitions beyond
  // u32 indexing fall back to the AoS path automatically.
  bool soa_final_merge = true;
  // Lease exchange chunk buffers from a recycling pool instead of
  // allocating one vector per chunk; false = fresh allocation per chunk
  // (ablation).
  bool use_buffer_pool = true;
  // Scoped (AMS group) exchanges only park in the pool-backpressure
  // receive while data frames are actually pending for this rank — the
  // lost-wakeup fix for the shared-pool deadlock under kTwoLevelAms.
  // Disabling it reintroduces that deadlock; the knob exists so the
  // deadlock-analysis suite can regression-test that the runtime wait-for
  // graph and the schedule perturbation explorer both catch it.
  bool scoped_pending_guard = true;
  // Telemetry master switch: per-rank obs::MetricsRegistry population and
  // SortReport support. Near-zero cost — every instrumentation point is a
  // branch on this flag, and the counters themselves are plain integer adds
  // outside the simulated cost model. Span tracing stays independently
  // controlled by set_trace(). Defaults from $PGXD_TELEMETRY (see
  // telemetry_default) so the whole suite can run instrumented.
  bool telemetry = telemetry_default();
  // Crash-stop recovery (see RecoveryConfig); disabled by default, and the
  // clean path is byte-identical with it disabled.
  RecoveryConfig recovery{};
  // Partitioning strategy for splitter determination (see PartitionScheme):
  // the paper's one-shot sampling (default), iterative histogram refinement
  // to `partition_epsilon`, or the AMS-style two-level recursion over
  // ~sqrt(p) rank groups.
  PartitionScheme partition = PartitionScheme::kOneLevelSample;
  // Balance target for kHistogramRefine: every partition is guaranteed
  // within (1 +- epsilon) * N/p elements on distinct keys (duplicate runs
  // are rebalanced by the investigator downstream). Must be in (0, 1].
  double partition_epsilon = 0.05;
  // Refinement round budget for kHistogramRefine; the refiner stops early
  // once every boundary is certified within epsilon. Must be >= 1.
  int partition_max_rounds = 10;

  MergeAlgo effective_final_merge() const {
    return balanced_final_merge ? final_merge : MergeAlgo::kSequentialKway;
  }

  // Rejects contradictory knob combinations; returns an empty string when
  // the configuration is valid, else a one-line reason. The sorter checks
  // this in its constructor, so an invalid config dies loudly instead of
  // running a subtly wrong sort.
  std::string validate() const;
};

struct MachineStats {
  StepTimings steps;
  std::uint64_t received_elements = 0;
  std::uint64_t sent_elements = 0;        // excluding the self range
  std::uint64_t sample_count = 0;
  std::size_t searches = 0;               // binary searches in step (4)
  std::size_t duplicate_groups = 0;
  // Exchange chunks discarded as fabric-level duplicates (only non-zero on
  // a duplicating fabric without reliable delivery).
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t peak_persistent_bytes = 0;
  std::uint64_t peak_temp_bytes = 0;
};

// Outcome of the partitioning strategy for one sort run (tentpole of the
// scalable-partitioning layer): how hard the splitter determination worked
// and how balanced the result came out, in the epsilon metric.
struct PartitionStats {
  PartitionScheme scheme = PartitionScheme::kOneLevelSample;
  // Histogram refinement rounds executed (1 for the single-shot schemes:
  // one sample gather == one round).
  std::uint64_t rounds = 1;
  double epsilon_target = 0.0;     // configured bound (histogram only)
  // Worst relative partition-size deviation actually achieved:
  // max_size / ideal - 1 over the final output partitions.
  double achieved_epsilon = 0.0;
  std::uint64_t groups = 1;        // AMS rank groups (1 for flat schemes)
  std::uint64_t sample_keys = 0;   // sample keys gathered, all levels
  std::uint64_t probe_keys = 0;    // candidate keys rank-certified (histogram)
  std::uint64_t level1_items = 0;  // items moved by the AMS level-1 exchange
};

template <typename Key>
struct SortStats {
  std::vector<MachineStats> machines;
  StepTimings steps_max;                 // per-step max across machines
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes_total = 0;
  std::uint64_t wire_bytes_samples = 0;  // sampling + splitter + counts traffic
  std::uint64_t wire_messages = 0;
  BalanceReport balance;
  std::vector<Key> splitters;
  RecoveryStats recovery;
  PartitionStats partition;
};

}  // namespace pgxd::core
