// Configuration and result types of the PGX.D distributed sort.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "runtime/buffered_writer.hpp"
#include "sim/time.hpp"

namespace pgxd::core {

// The six steps of Sec. IV, used to index StepTimings (Fig. 7).
enum class Step : std::size_t {
  kLocalSort = 0,       // (1) parallel quicksort + balanced merge
  kSampling = 1,        // (2) regular samples -> master
  kSplitterSelect = 2,  // (3) master selects splitters, broadcast (wait time
                        //     for non-master machines)
  kPartitionPlan = 3,   // (4) binary search + investigator + counts exchange
  kExchange = 4,        // (5) simultaneous send/receive of data ranges
  kFinalMerge = 5,      // (6) balanced merge of per-source runs
};
inline constexpr std::size_t kStepCount = 6;

const char* step_name(Step s);
// Metric-name-safe step suffix ("send/receive" -> "exchange"): step timings
// appear in the registry as sort.step.<suffix>_ns.
const char* step_metric_suffix(Step s);

// Default for SortConfig::telemetry: true when the PGXD_TELEMETRY
// environment variable is set to anything but "0" or empty. Lets
// scripts/check.sh run the whole test suite instrumented without touching
// any call site; explicit assignment always wins. Read once and cached.
bool telemetry_default();

struct StepTimings {
  std::array<sim::SimTime, kStepCount> t{};

  sim::SimTime& operator[](Step s) { return t[static_cast<std::size_t>(s)]; }
  sim::SimTime operator[](Step s) const { return t[static_cast<std::size_t>(s)]; }
  sim::SimTime total() const {
    sim::SimTime sum = 0;
    for (auto x : t) sum += x;
    return sum;
  }
  // Element-wise max; used to aggregate across machines.
  void max_with(const StepTimings& o) {
    for (std::size_t i = 0; i < kStepCount; ++i) t[i] = std::max(t[i], o.t[i]);
  }
};

struct SortConfig {
  // The PGX.D read-buffer size; X = read_buffer_bytes / machines is the
  // per-processor sample budget (Sec. IV-B).
  std::uint64_t read_buffer_bytes = rt::kDefaultBufferBytes;
  // Sample size as a multiple of X (Fig. 9 sweeps 0.004 .. 1.4).
  double sample_factor = 1.0;
  // Fig. 3c duplicate-splitter investigator.
  bool use_investigator = true;
  // Fig. 2 balanced merge handler for the final merge; false = sequential
  // k-way heap merge (ablation).
  bool balanced_final_merge = true;
  // Send-while-receive exchange; false = send everything, barrier, then
  // receive (bulk-synchronous ablation).
  bool async_exchange = true;
  // Stream exchange data in read-buffer-sized chunks through the data
  // manager; false sends each range as a single message.
  bool buffered_exchange = true;
  // Post-merge exactly-once audit: every element's provenance is checked to
  // appear exactly once (no chunk lost, duplicated, or misplaced by the
  // exchange). Cheap real work outside the simulated cost model.
  bool audit_exchange = true;
  // Structure-of-arrays final merge: bare keys plus a compact u32
  // permutation travel through the Fig. 2 tree and provenance is
  // reconstructed once at the end — each level moves sizeof(Key) + 4 bytes
  // per element instead of sizeof(Item). false = merge full Item records
  // (ablation). Only applies with balanced_final_merge; partitions beyond
  // u32 indexing fall back to the AoS path automatically.
  bool soa_final_merge = true;
  // Lease exchange chunk buffers from a recycling pool instead of
  // allocating one vector per chunk; false = fresh allocation per chunk
  // (ablation).
  bool use_buffer_pool = true;
  // Telemetry master switch: per-rank obs::MetricsRegistry population and
  // SortReport support. Near-zero cost — every instrumentation point is a
  // branch on this flag, and the counters themselves are plain integer adds
  // outside the simulated cost model. Span tracing stays independently
  // controlled by set_trace(). Defaults from $PGXD_TELEMETRY (see
  // telemetry_default) so the whole suite can run instrumented.
  bool telemetry = telemetry_default();
};

struct MachineStats {
  StepTimings steps;
  std::uint64_t received_elements = 0;
  std::uint64_t sent_elements = 0;        // excluding the self range
  std::uint64_t sample_count = 0;
  std::size_t searches = 0;               // binary searches in step (4)
  std::size_t duplicate_groups = 0;
  // Exchange chunks discarded as fabric-level duplicates (only non-zero on
  // a duplicating fabric without reliable delivery).
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t peak_persistent_bytes = 0;
  std::uint64_t peak_temp_bytes = 0;
};

template <typename Key>
struct SortStats {
  std::vector<MachineStats> machines;
  StepTimings steps_max;                 // per-step max across machines
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes_total = 0;
  std::uint64_t wire_bytes_samples = 0;  // sampling + splitter + counts traffic
  std::uint64_t wire_messages = 0;
  BalanceReport balance;
  std::vector<Key> splitters;
};

}  // namespace pgxd::core
