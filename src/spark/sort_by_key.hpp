// Spark 1.6.1 sortByKey() baseline on the simulated cluster.
//
// Mirrors the structure the paper describes (Sec. II): "sample, map and
// reduce" stages with bulk-synchronous boundaries, range partitioning from
// a small random sample (RangePartitioner), shuffle materialization, and
// TimSort as the local sort in the reduce stage. Data movement is real;
// time is charged through the shared cost model plus the Spark cost profile.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "runtime/buffered_writer.hpp"
#include "runtime/cluster.hpp"
#include "sim/trace.hpp"
#include "sort/samples.hpp"
#include "sort/timsort.hpp"
#include "spark/cost_profile.hpp"

namespace pgxd::spark {

template <typename Key>
struct SparkMsg {
  std::vector<Key> keys;

  // User-declared constructors are load-bearing; see the note on
  // rt::Message about GCC 12 and aggregate temporaries in co_await.
  SparkMsg() = default;
  explicit SparkMsg(std::vector<Key> k) : keys(std::move(k)) {}
};

enum class Stage : std::size_t {
  kSample = 0,
  kMapShuffle = 1,   // classify + shuffle write (serialize)
  kReduceSort = 2,   // fetch + deserialize + TimSort
};
inline constexpr std::size_t kStageCount = 3;

const char* stage_name(Stage s);

struct SparkStats {
  std::array<sim::SimTime, kStageCount> stage_time{};
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes = 0;
  pgxd::BalanceReport balance;

  sim::SimTime& operator[](Stage s) { return stage_time[static_cast<std::size_t>(s)]; }
  sim::SimTime operator[](Stage s) const { return stage_time[static_cast<std::size_t>(s)]; }
};

template <typename Key, typename Comp = std::less<Key>>
class SparkSortByKey {
 public:
  using Msg = SparkMsg<Key>;
  using Cluster = rt::Cluster<Msg>;

  static constexpr int kTagSamples = 100;
  static constexpr int kTagBounds = 101;
  static constexpr int kTagData = 102;

  SparkSortByKey(Cluster& cluster, SparkCostProfile profile = {}, Comp comp = {})
      : cluster_(cluster), profile_(profile), comp_(comp) {
    output_.resize(cluster.size());
    stage_max_.fill(0);
  }

  // Installs shards, runs the three-stage job, fills stats.
  void run(std::vector<std::vector<Key>> shards) {
    PGXD_CHECK(shards.size() == cluster_.size());
    input_ = std::move(shards);
    const sim::SimTime elapsed = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.total_time = elapsed;
    stats_.stage_time = stage_max_;
    std::vector<std::uint64_t> sizes;
    for (const auto& part : output_) sizes.push_back(part.size());
    stats_.balance = pgxd::balance_report(sizes);
    stats_.wire_bytes = wire_bytes_;
  }

  const std::vector<std::vector<Key>>& partitions() const { return output_; }
  const SparkStats& stats() const { return stats_; }

  // Optional span tracing (one lane per machine, one span per stage).
  void set_trace(sim::Trace* trace) { trace_ = trace; }

 private:
  static constexpr std::size_t kDriver = 0;

  std::uint64_t wire_size(std::size_t count) const {
    return static_cast<std::uint64_t>(
        static_cast<double>(count * sizeof(Key)) * profile_.row_overhead_factor);
  }

  sim::SimTime serialization_time(std::uint64_t bytes) const {
    return static_cast<sim::SimTime>(
        profile_.serialization_ns_per_byte * static_cast<double>(bytes));
  }

  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    auto& sim = cluster_.simulator();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    sim::SimTime mark = sim.now();
    auto stamp = [&](Stage s) {
      stage_max_[static_cast<std::size_t>(s)] =
          std::max(stage_max_[static_cast<std::size_t>(s)], sim.now() - mark);
      if (trace_) trace_->record(rank, stage_name(s), mark, sim.now());
      mark = sim.now();
    };

    const auto& in = input_[rank];
    const std::size_t n = in.size();

    // --- Stage 1: sample -> driver computes range bounds -------------------
    co_await m.compute(profile_.stage_overhead);
    std::vector<Key> sample;
    {
      const std::size_t want = std::min(profile_.samples_per_partition, n);
      sample.reserve(want);
      // Reservoir sampling over the unsorted shard (RangePartitioner.sketch).
      for (std::size_t i = 0; i < n; ++i) {
        if (sample.size() < want) {
          sample.push_back(in[i]);
        } else {
          const std::uint64_t r = m.rng().bounded(i + 1);
          if (r < want) sample[r] = in[i];
        }
      }
      co_await m.compute(static_cast<sim::SimTime>(
          static_cast<double>(m.cost().copy_time(n)) * profile_.cpu_factor));
    }
    if (rank != kDriver) {
      const std::uint64_t bytes = wire_size(sample.size());
      wire_bytes_ += bytes;
      co_await comm.send(rank, kDriver, kTagSamples, Msg{std::move(sample)},
                         bytes);
    } else {
      std::vector<Key> pool = std::move(sample);
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(kDriver, kTagSamples);
        pool.insert(pool.end(), msg.payload.keys.begin(),
                    msg.payload.keys.end());
      }
      std::sort(pool.begin(), pool.end(), comp_);
      bounds_ = sort::select_splitters<Key, Comp>(pool, p, comp_);
      for (std::size_t dst = 0; dst < p; ++dst) {
        const std::uint64_t bytes = wire_size(bounds_.size());
        if (dst != kDriver) wire_bytes_ += bytes;
        comm.post(kDriver, dst, kTagBounds, Msg{bounds_}, bytes);
      }
    }
    auto bounds_msg = co_await comm.recv(rank, kTagBounds);
    const std::vector<Key> bounds = std::move(bounds_msg.payload.keys);
    // Stage boundary: every task of the sample stage must finish.
    co_await comm.barrier(rank);
    stamp(Stage::kSample);

    // --- Stage 2: map — classify rows, write shuffle files -----------------
    co_await m.compute(profile_.stage_overhead);
    std::vector<std::vector<Key>> buckets(p);
    for (auto& b : buckets) b.reserve(n / p + 1);
    for (const auto& key : in) {
      const auto it = std::upper_bound(bounds.begin(), bounds.end(), key, comp_);
      buckets[static_cast<std::size_t>(it - bounds.begin())].push_back(key);
    }
    // Row-at-a-time classification: a linear scan with a short binary
    // search over the (in-cache) p-1 bounds per row — scan-cost class, not
    // the cost model's cache-missy large-array search.
    co_await m.compute(static_cast<sim::SimTime>(
        static_cast<double>(m.cost().merge_time(n)) * profile_.cpu_factor));
    co_await m.compute(serialization_time(wire_size(n)));
    // Spark 1.6 shuffle: map outputs are fully materialized before any
    // reduce fetch begins — a hard stage barrier, no overlap.
    co_await comm.barrier(rank);
    stamp(Stage::kMapShuffle);

    // --- Stage 3: reduce — fetch blocks, deserialize, TimSort --------------
    // Shuffle outputs stream through request buffers in block-sized chunks
    // (the same buffered-write mechanism as the PGX.D data manager); an
    // empty message per destination marks end-of-stream.
    co_await m.compute(profile_.stage_overhead);
    {
      rt::BufferedWriter<Key> writer(
          p, profile_.shuffle_block_bytes,
          [&](std::size_t dst, std::vector<Key> block) {
            const std::uint64_t bytes = wire_size(block.size());
            wire_bytes_ += bytes;
            comm.post(rank, dst, kTagData, Msg{std::move(block)}, bytes);
          });
      for (std::size_t step = 1; step < p; ++step) {
        const std::size_t dst = (rank + step) % p;
        writer.write(dst, buckets[dst]);
        buckets[dst].clear();
        buckets[dst].shrink_to_fit();
      }
      writer.flush_all();
      for (std::size_t step = 1; step < p; ++step) {
        const std::size_t dst = (rank + step) % p;
        comm.post(rank, dst, kTagData, Msg{{}}, 16);  // end-of-stream marker
      }
    }
    auto& out = output_[rank];
    out = std::move(buckets[rank]);
    std::uint64_t fetched_bytes = 0;
    for (std::size_t done = 0; done + 1 < p;) {
      auto msg = co_await comm.recv(rank, kTagData);
      if (msg.payload.keys.empty()) {
        ++done;
        continue;
      }
      fetched_bytes += msg.bytes;
      out.insert(out.end(), msg.payload.keys.begin(), msg.payload.keys.end());
    }
    co_await m.compute(serialization_time(fetched_bytes));  // deserialize
    // TimSort is adaptive: charge by the number of natural runs the real
    // sort found — "it performs better when the data is partially sorted"
    // is thereby measurable (see bench/ablation_presorted).
    const auto ts = sort::timsort(std::span<Key>(out), comp_);
    const sim::SimTime serial = m.cost().adaptive_sort_time(
        out.size(), std::max<std::size_t>(1, ts.runs_found));
    co_await m.compute(static_cast<sim::SimTime>(
        static_cast<double>(m.cost().parallel(serial, m.threads())) *
        profile_.cpu_factor));
    co_await comm.barrier(rank);
    stamp(Stage::kReduceSort);
    co_return;
  }

  Cluster& cluster_;
  SparkCostProfile profile_;
  Comp comp_;
  std::vector<std::vector<Key>> input_;
  std::vector<std::vector<Key>> output_;
  std::vector<Key> bounds_;
  std::array<sim::SimTime, kStageCount> stage_max_{};
  SparkStats stats_;
  std::uint64_t wire_bytes_ = 0;
  sim::Trace* trace_ = nullptr;
};

}  // namespace pgxd::spark
