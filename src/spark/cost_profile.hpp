// Cost profile of the Spark 1.6.1 baseline.
//
// The paper compares against Spark's sortByKey(). Spark is unavailable as a
// C++ substrate, so the baseline reimplements its algorithmic structure on
// the same simulated cluster and charges the overheads that published
// measurements attribute to Spark's execution model. The 2x-3x gap the
// paper reports comes from three modeled causes — not from a fudge factor:
//
//   1. Bulk-synchronous stage boundaries: sample -> map(shuffle write) ->
//      reduce(fetch + sort), with a full barrier between stages, so no
//      send-while-receive overlap.
//   2. Shuffle materialization: rows are serialized on write and
//      deserialized on read (charged per byte), and reduce tasks cannot
//      start sorting before their fetch completes.
//   3. JVM execution: row-at-a-time iterators over boxed/serialized rows
//      run the scan/sort kernels a small constant slower than native code
//      ("Clash of the Titans", VLDB'15, reports 1.9x-5x for shuffle-heavy
//      operators; we default to 2.5x).
//
// Every constant is overridable per run; the ablation benches sweep them.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pgxd::spark {

struct SparkCostProfile {
  // JVM vs native multiplier applied to compute kernels (sort, classify).
  double cpu_factor = 1.4;
  // Serialize + write on the map side, read + deserialize on the reduce
  // side, charged per shuffled byte on each side (~5 GB/s Kryo-class).
  double serialization_ns_per_byte = 0.1;
  // Wire bytes per 8-byte key: Spark shuffle rows carry framing/metadata.
  double row_overhead_factor = 1.3;
  // Driver scheduling + task launch latency per stage (DAG scheduler,
  // task serialization, executor dispatch). Real Spark 1.6 pays
  // ~100-300 ms per stage against multi-second stages at the paper's
  // 1-billion-key scale; the default here is scaled down by the same
  // ~500x factor as the bench problem sizes (2^21 vs 1e9 keys) so the
  // overhead:work ratio — which is what shapes the comparison — matches
  // the real system. Benches sweeping --n far from 2^21 should scale this
  // flagged value accordingly.
  sim::SimTime stage_overhead = 150 * sim::kMicrosecond;
  // RangePartitioner.sketch(): sampleSizePerPartition = 20 by default
  // (scaled by 3x fudge in determineBounds). Tiny samples are why Spark's
  // range partitioning degrades on duplicate-heavy data.
  std::size_t samples_per_partition = 60;
  // Shuffle blocks stream in chunks of this size (reduce-side fetch
  // granularity).
  std::uint64_t shuffle_block_bytes = 1ull << 20;
};

}  // namespace pgxd::spark
