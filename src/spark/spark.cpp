#include "spark/sort_by_key.hpp"

namespace pgxd::spark {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kSample: return "sample";
    case Stage::kMapShuffle: return "map/shuffle-write";
    case Stage::kReduceSort: return "reduce/fetch+sort";
  }
  return "unknown";
}

}  // namespace pgxd::spark
