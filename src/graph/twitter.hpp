// Twitter-like sort keys for the Fig. 8 / Table III experiments.
//
// Table III shows the Twitter sort keys span [0, 95] with two-decimal
// boundaries — the paper sorts a per-vertex metric normalized into that
// range. We reproduce the *distributional* properties the evaluation
// implies: a power-law degree multiset mapped through a smoothed log
// transform (log(degree + U[0,1)), so the discrete degree spectrum spreads
// over the continuous metric) quantized to fixed-point centi-units on
// [0, 9500]. The result is duplicate-rich (hundreds of copies of each
// centi-value at bench sizes, exercising the investigator at every
// boundary) but has no single dominant value — consistent with the paper's
// Spark baseline losing only ~2.6x on this dataset rather than collapsing
// onto one reducer.
#pragma once

#include <cstdint>
#include <vector>

namespace pgxd::graph {

// Key domain: centi-units, i.e. key/100.0 lies in [0, 95].
inline constexpr std::uint64_t kTwitterKeyMax = 9500;

struct TwitterConfig {
  std::size_t total_keys = 1 << 22;  // stands in for 41.6M vertices
  double alpha = 2.1;                // follower-count power-law exponent
  std::uint64_t max_degree = 3'000'000;
  std::uint64_t seed = 2017;
};

// Maps one degree to a centi-unit key in [0, kTwitterKeyMax]. `jitter` in
// [0, 1) smooths the discrete degree spectrum (0.0 = pure log-degree).
std::uint64_t degree_to_key(std::uint64_t degree, std::uint64_t max_degree,
                            double jitter = 0.0);

// Deterministic per-machine shard of the key multiset (same split rule as
// gen::generate_shard).
std::vector<std::uint64_t> twitter_shard(const TwitterConfig& cfg,
                                         std::size_t machines,
                                         std::size_t rank);

}  // namespace pgxd::graph
