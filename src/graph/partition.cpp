#include "graph/partition.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace pgxd::graph {

Partition partition_by_edges(const CsrGraph& g, std::size_t machines) {
  PGXD_CHECK(machines >= 1);
  const VertexId v_count = g.num_vertices();
  Partition p;
  p.vertex_owner.assign(v_count, 0);
  p.block_start.assign(machines + 1, v_count);
  p.block_start[0] = 0;

  const std::uint64_t total = g.num_edges();
  const auto row = g.row_ptr();
  // Greedy sweep: close machine m's block once it holds >= (m+1)/machines of
  // all edges. Guarantees every machine gets a (possibly empty) block.
  std::size_t m = 0;
  for (VertexId v = 0; v < v_count; ++v) {
    while (m + 1 < machines &&
           row[v] * machines >= total * (m + 1)) {
      p.block_start[++m] = v;
    }
    p.vertex_owner[v] = static_cast<std::uint32_t>(m);
  }
  for (std::size_t b = m + 1; b <= machines; ++b) p.block_start[b] = v_count;
  return p;
}

GhostStats ghost_stats(const CsrGraph& g, const Partition& p,
                       std::size_t machine) {
  GhostStats s;
  std::unordered_set<VertexId> ghosts;
  const VertexId lo = p.block_start[machine];
  const VertexId hi = p.block_start[machine + 1];
  for (VertexId v = lo; v < hi; ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (p.vertex_owner[u] != machine) {
        ++s.crossing_edges;
        ghosts.insert(u);
      }
    }
  }
  s.ghost_vertices = ghosts.size();
  s.message_reduction =
      s.ghost_vertices == 0
          ? 1.0
          : static_cast<double>(s.crossing_edges) /
                static_cast<double>(s.ghost_vertices);
  return s;
}

GhostStats total_ghost_stats(const CsrGraph& g, const Partition& p) {
  GhostStats total;
  const std::size_t machines = p.block_start.size() - 1;
  for (std::size_t m = 0; m < machines; ++m) {
    const GhostStats s = ghost_stats(g, p, m);
    total.crossing_edges += s.crossing_edges;
    total.ghost_vertices += s.ghost_vertices;
  }
  total.message_reduction =
      total.ghost_vertices == 0
          ? 1.0
          : static_cast<double>(total.crossing_edges) /
                static_cast<double>(total.ghost_vertices);
  return total;
}

std::vector<EdgeChunk> edge_chunks(const CsrGraph& g, const Partition& p,
                                   std::size_t machine, std::size_t chunks) {
  PGXD_CHECK(chunks >= 1);
  const VertexId lo = p.block_start[machine];
  const VertexId hi = p.block_start[machine + 1];
  const auto row = g.row_ptr();
  const std::uint64_t first = row[lo];
  const std::uint64_t last = row[hi];
  const std::uint64_t edges = last - first;
  std::vector<EdgeChunk> out;
  if (edges == 0 || lo == hi) return out;
  chunks = std::min<std::size_t>(chunks, edges);
  out.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint64_t off_lo = first + edges * c / chunks;
    const std::uint64_t off_hi = first + edges * (c + 1) / chunks;
    if (off_lo == off_hi) continue;
    // Vertices covering [off_lo, off_hi): binary search in row_ptr.
    const auto vb = std::upper_bound(row.begin() + lo, row.begin() + hi + 1,
                                     off_lo) - row.begin() - 1;
    const auto ve = std::upper_bound(row.begin() + lo, row.begin() + hi + 1,
                                     off_hi - 1) - row.begin() - 1;
    out.push_back(EdgeChunk{static_cast<VertexId>(vb),
                            static_cast<VertexId>(ve), off_lo, off_hi});
  }
  return out;
}

}  // namespace pgxd::graph
