#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/assert.hpp"

namespace pgxd::graph {

namespace {
constexpr std::uint64_t kCsrMagic = 0x50475844'43535231ULL;  // "PGXDCSR1"
}

void write_edge_list(const std::filesystem::path& path,
                     std::span<const Edge> edges) {
  std::ofstream out(path, std::ios::trunc);
  PGXD_CHECK_MSG(out.good(), "cannot open edge list for writing");
  out << "# pgxd edge list: src dst\n";
  for (const auto& e : edges) out << e.src << ' ' << e.dst << '\n';
  PGXD_CHECK_MSG(out.good(), "edge list write failed");
}

CsrGraph read_edge_list(const std::filesystem::path& path,
                        VertexId num_vertices) {
  std::ifstream in(path);
  PGXD_CHECK_MSG(in.good(), "cannot open edge list for reading");
  std::vector<Edge> edges;
  VertexId max_vertex = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t src = 0, dst = 0;
    if (!(fields >> src >> dst)) {
      std::fprintf(stderr, "malformed edge at %s:%zu: '%s'\n",
                   path.string().c_str(), line_no, line.c_str());
      PGXD_CHECK_MSG(false, "malformed edge list line");
    }
    edges.push_back(Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
  }
  if (num_vertices == 0) num_vertices = edges.empty() ? 0 : max_vertex + 1;
  return CsrGraph::from_edges(num_vertices, edges);
}

void write_csr_binary(const std::filesystem::path& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PGXD_CHECK_MSG(out.good(), "cannot open CSR file for writing");
  auto put_u64 = [&](std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u64(kCsrMagic);
  put_u64(g.num_vertices());
  put_u64(g.num_edges());
  const auto row = g.row_ptr();
  out.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size_bytes()));
  const auto col = g.col_idx();
  out.write(reinterpret_cast<const char*>(col.data()),
            static_cast<std::streamsize>(col.size_bytes()));
  PGXD_CHECK_MSG(out.good(), "CSR write failed");
}

CsrGraph read_csr_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  PGXD_CHECK_MSG(in.good(), "cannot open CSR file for reading");
  auto get_u64 = [&] {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    return v;
  };
  PGXD_CHECK_MSG(get_u64() == kCsrMagic, "not a pgxd CSR file");
  const auto v_count = get_u64();
  const auto e_count = get_u64();

  // Rebuild via the edge path to keep CsrGraph's construction invariants in
  // one place (counting sort is linear; reload stays O(V + E)).
  std::vector<std::uint64_t> row(v_count + 1);
  in.read(reinterpret_cast<char*>(row.data()),
          static_cast<std::streamsize>(row.size() * sizeof(std::uint64_t)));
  std::vector<VertexId> col(e_count);
  in.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(col.size() * sizeof(VertexId)));
  PGXD_CHECK_MSG(in.good(), "truncated CSR file");

  std::vector<Edge> edges;
  edges.reserve(e_count);
  for (VertexId v = 0; v < v_count; ++v)
    for (auto i = row[v]; i < row[v + 1]; ++i)
      edges.push_back(Edge{v, col[i]});
  return CsrGraph::from_edges(static_cast<VertexId>(v_count), edges);
}

}  // namespace pgxd::graph
