// Synthetic graph generation: RMAT (Kronecker) edges for twitter-like
// power-law structure, plus a direct Zipf degree sampler.
//
// The paper evaluates on the Twitter follower graph (41.6 M vertices); we
// cannot ship that dataset, so the Fig. 8 / Table III experiments run on an
// RMAT graph whose degree distribution has the same power-law heavy tail —
// the property that makes the sort keys duplicate-heavy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace pgxd::graph {

struct RmatConfig {
  VertexId num_vertices = 1 << 16;  // rounded up to a power of two
  std::uint64_t num_edges = 1 << 20;
  // Classic twitter-like skew parameters (a+b+c+d == 1).
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  std::uint64_t seed = 7;
};

// Generates an RMAT edge list (self-loops and duplicates allowed, as in the
// reference generator).
std::vector<Edge> rmat_edges(const RmatConfig& cfg);

// Convenience: build the CSR directly.
CsrGraph rmat_graph(const RmatConfig& cfg);

// Samples `n` degrees from a Zipf-like power law with exponent `alpha`
// over [1, max_degree]. Used where only the degree multiset matters.
std::vector<std::uint64_t> powerlaw_degrees(std::size_t n, double alpha,
                                            std::uint64_t max_degree,
                                            std::uint64_t seed);

}  // namespace pgxd::graph
