#include "graph/twitter.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "datagen/distributions.hpp"
#include "graph/generate.hpp"

namespace pgxd::graph {

std::uint64_t degree_to_key(std::uint64_t degree, std::uint64_t max_degree,
                            double jitter) {
  PGXD_CHECK(max_degree >= 1);
  PGXD_CHECK(jitter >= 0.0 && jitter < 1.0);
  if (degree < 1) degree = 1;
  if (degree > max_degree) degree = max_degree;
  const double t = std::log(static_cast<double>(degree) + jitter) /
                   std::log(static_cast<double>(max_degree) + 1.0);
  const double key = t * static_cast<double>(kTwitterKeyMax);
  return static_cast<std::uint64_t>(
      std::clamp(key, 0.0, static_cast<double>(kTwitterKeyMax)));
}

std::vector<std::uint64_t> twitter_shard(const TwitterConfig& cfg,
                                         std::size_t machines,
                                         std::size_t rank) {
  const std::size_t n = gen::shard_size(cfg.total_keys, machines, rank);
  auto degrees =
      powerlaw_degrees(n, cfg.alpha, cfg.max_degree, derive_seed(cfg.seed, rank));
  Rng jitter_rng(derive_seed(cfg.seed ^ 0x717e5ULL, rank));
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = degree_to_key(degrees[i], cfg.max_degree, jitter_rng.uniform());
  return keys;
}

}  // namespace pgxd::graph
