// Graph file I/O — the "graph loading" half of the PGX.D data manager:
// text edge lists (one "src dst" pair per line, '#' comments) and a compact
// binary CSR format for fast reloads.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace pgxd::graph {

// Writes "src dst\n" lines. Overwrites the file.
void write_edge_list(const std::filesystem::path& path,
                     std::span<const Edge> edges);

// Reads an edge list; ignores blank lines and lines starting with '#'.
// Aborts on malformed lines. If num_vertices is 0 it is inferred as
// max(vertex id) + 1.
CsrGraph read_edge_list(const std::filesystem::path& path,
                        VertexId num_vertices = 0);

// Binary CSR: magic, vertex count, edge count, row_ptr[], col_idx[].
void write_csr_binary(const std::filesystem::path& path, const CsrGraph& g);
CsrGraph read_csr_binary(const std::filesystem::path& path);

}  // namespace pgxd::graph
