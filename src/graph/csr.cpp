#include "graph/csr.hpp"

namespace pgxd::graph {

CsrGraph CsrGraph::from_edges(VertexId num_vertices,
                              std::span<const Edge> edges) {
  CsrGraph g;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& e : edges) {
    PGXD_CHECK(e.src < num_vertices && e.dst < num_vertices);
    ++g.row_ptr_[e.src + 1];
  }
  for (std::size_t v = 1; v <= num_vertices; ++v)
    g.row_ptr_[v] += g.row_ptr_[v - 1];
  g.col_idx_.resize(edges.size());
  std::vector<std::uint64_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const auto& e : edges) g.col_idx_[cursor[e.src]++] = e.dst;
  return g;
}

std::vector<std::uint64_t> CsrGraph::in_degrees() const {
  std::vector<std::uint64_t> deg(num_vertices(), 0);
  for (const auto dst : col_idx_) ++deg[dst];
  return deg;
}

}  // namespace pgxd::graph
