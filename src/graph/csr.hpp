// Compressed Sparse Row graph storage — the data-manager representation
// PGX.D keeps graphs in (Sec. III), and the substrate behind the Twitter
// experiment (Fig. 8, Table III) and the graph examples.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::graph {

using VertexId = std::uint32_t;

struct Edge {
  VertexId src;
  VertexId dst;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds from an edge list (counting sort by source; O(V + E)).
  static CsrGraph from_edges(VertexId num_vertices, std::span<const Edge> edges);

  VertexId num_vertices() const {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  std::uint64_t num_edges() const { return col_idx_.size(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    PGXD_CHECK(v < num_vertices());
    return std::span<const VertexId>(col_idx_)
        .subspan(row_ptr_[v], row_ptr_[v + 1] - row_ptr_[v]);
  }

  std::uint64_t out_degree(VertexId v) const {
    PGXD_CHECK(v < num_vertices());
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  // In-degrees require a full pass; returned by value.
  std::vector<std::uint64_t> in_degrees() const;

  std::span<const std::uint64_t> row_ptr() const { return row_ptr_; }
  std::span<const VertexId> col_idx() const { return col_idx_; }

 private:
  std::vector<std::uint64_t> row_ptr_;  // size V+1
  std::vector<VertexId> col_idx_;       // size E
};

}  // namespace pgxd::graph
