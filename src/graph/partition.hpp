// PGX.D data-manager graph features the paper cites (Sec. III): vertex
// partitioning across machines, ghost-node selection (caching remote
// endpoints of crossing edges to cut communication), and edge chunking
// (splitting each machine's edge set into equal-work chunks for the task
// manager).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace pgxd::graph {

struct Partition {
  // vertex_owner[v] = machine owning v; vertices are assigned in contiguous
  // blocks balanced by edge count.
  std::vector<std::uint32_t> vertex_owner;
  // first vertex of each machine's block (size machines+1).
  std::vector<VertexId> block_start;
};

// Contiguous vertex blocks with (approximately) equal total out-degree.
Partition partition_by_edges(const CsrGraph& g, std::size_t machines);

struct GhostStats {
  std::uint64_t crossing_edges = 0;   // edges whose endpoints differ in owner
  std::uint64_t ghost_vertices = 0;   // distinct remote endpoints cached
  // Messages a pull-based step would send without ghosts (one per crossing
  // edge) vs with ghosts (one per distinct remote endpoint).
  double message_reduction = 0.0;
};

// Ghost-node selection for one machine: distinct remote endpoints of its
// crossing edges.
GhostStats ghost_stats(const CsrGraph& g, const Partition& p,
                       std::size_t machine);

// Aggregate over all machines.
GhostStats total_ghost_stats(const CsrGraph& g, const Partition& p);

struct EdgeChunk {
  VertexId first_vertex;
  VertexId last_vertex;       // inclusive
  std::uint64_t first_offset; // CSR offset of the chunk's first edge
  std::uint64_t last_offset;  // one past the chunk's last edge
};

// Splits machine `m`'s edges into `chunks` pieces of near-equal edge count,
// allowing a vertex's adjacency list to span a chunk boundary — PGX.D's
// edge-chunking strategy for intra-machine load balance.
std::vector<EdgeChunk> edge_chunks(const CsrGraph& g, const Partition& p,
                                   std::size_t machine, std::size_t chunks);

}  // namespace pgxd::graph
