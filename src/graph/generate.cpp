#include "graph/generate.hpp"

#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pgxd::graph {

std::vector<Edge> rmat_edges(const RmatConfig& cfg) {
  PGXD_CHECK(cfg.num_vertices >= 2);
  PGXD_CHECK(std::abs(cfg.a + cfg.b + cfg.c + cfg.d - 1.0) < 1e-9);
  const VertexId n = std::bit_ceil(cfg.num_vertices);
  const int levels = std::countr_zero(n);
  Rng rng(cfg.seed);
  std::vector<Edge> edges;
  edges.reserve(cfg.num_edges);
  for (std::uint64_t e = 0; e < cfg.num_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double u = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (u < cfg.a) {
        // top-left quadrant
      } else if (u < cfg.a + cfg.b) {
        dst |= 1;
      } else if (u < cfg.a + cfg.b + cfg.c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    // Clamp into the requested vertex range when it is not a power of two.
    edges.push_back(Edge{src % cfg.num_vertices, dst % cfg.num_vertices});
  }
  return edges;
}

CsrGraph rmat_graph(const RmatConfig& cfg) {
  const auto edges = rmat_edges(cfg);
  return CsrGraph::from_edges(cfg.num_vertices, edges);
}

std::vector<std::uint64_t> powerlaw_degrees(std::size_t n, double alpha,
                                            std::uint64_t max_degree,
                                            std::uint64_t seed) {
  PGXD_CHECK(alpha > 1.0);
  PGXD_CHECK(max_degree >= 1);
  Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  // Inverse-CDF sampling of a continuous Pareto truncated at max_degree,
  // floored to integers: P(X >= x) ~ x^(1-alpha).
  const double inv = 1.0 / (1.0 - alpha);
  const double cap = static_cast<double>(max_degree);
  for (auto& d : out) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    const double x = std::pow(u, inv);  // in [1, inf)
    d = static_cast<std::uint64_t>(std::min(x, cap));
  }
  return out;
}

}  // namespace pgxd::graph
