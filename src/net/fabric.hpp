// Flow-level cluster network model.
//
// Models the paper's testbed fabric (Mellanox Connect-IB NICs + SX6512
// switch): every machine has a full-duplex NIC whose TX and RX sides
// serialize traffic at link bandwidth, connected through a switch with
// configurable oversubscription (1.0 = full bisection, matching a
// non-blocking SX6512). A message transfer costs
//
//   per-message overhead  +  bytes/bw on the TX port   (serialization)
//   + fabric latency                                    (propagation+switch)
//   + bytes/bw on the RX port                           (delivery)
//
// with FIFO queueing at every port, which is what makes incast patterns
// (everyone sending samples to the master) cost what they should.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace pgxd::net {

// FIFO-reservation resource: callers occupy it back-to-back in call order.
// Cheaper and exactly as deterministic as a semaphore-based model for
// serial links.
class SerialLink {
 public:
  // Reserves the link for `duration` starting at its next free instant and
  // returns an awaitable that completes when the reservation ends.
  auto occupy(sim::Simulator& sim, sim::SimTime duration) {
    PGXD_CHECK(duration >= 0);
    const sim::SimTime start = std::max(sim.now(), next_free_);
    next_free_ = start + duration;
    busy_ += duration;
    return sim.delay(next_free_ - sim.now());
  }

  sim::SimTime next_free() const { return next_free_; }
  sim::SimTime busy_time() const { return busy_; }

 private:
  sim::SimTime next_free_ = 0;
  sim::SimTime busy_ = 0;
};

// One entry of the deterministic crash-stop schedule: machine `rank` dies
// at simulated time `at` — its TX port transmits nothing (messages vanish
// at zero cost: a dead host issues no DMA) and traffic addressed to it is
// silently discarded before its RX port. `restart_after == 0` means the
// rank never comes back; otherwise its *ports* light up again at
// `at + restart_after` (the machine rebooted) — whatever process was
// running on it is still gone, which is the application layer's problem.
struct CrashEvent {
  std::size_t rank = 0;
  sim::SimTime at = 0;
  sim::SimTime restart_after = 0;  // 0 = crash-stop forever

  CrashEvent() = default;
  CrashEvent(std::size_t rank_, sim::SimTime at_,
             sim::SimTime restart_after_ = 0)
      : rank(rank_), at(at_), restart_after(restart_after_) {}
};

// Fault-injection model. The fabric can lose or duplicate individual
// messages, open transient blackout/degradation windows, slow down
// individual NICs, and crash-stop whole machines on a schedule.
// Per-message decisions come from one dedicated seeded RNG stream
// (independent of latency jitter) and the windows and crash schedule are
// pure functions of simulated time, so a (seed, config) pair replays
// bit-identically — chaos runs are as reproducible as clean ones.
struct FaultConfig {
  // Per-message loss probability: the message pays its TX cost, then
  // vanishes in the fabric before reaching the RX port.
  double drop_prob = 0.0;
  // Per-message probability that the RX port delivers two copies (e.g. a
  // retransmitting link layer whose original was not actually lost).
  double duplicate_prob = 0.0;
  // Blackout windows: within every `blackout_period`, messages entering
  // the switch during the first `blackout_duration` are lost. 0 disables.
  sim::SimTime blackout_period = 0;
  sim::SimTime blackout_duration = 0;
  // Degradation windows: port serialization slows by `degrade_factor` for
  // the first `degrade_duration` of every `degrade_period`. 0 disables.
  sim::SimTime degrade_period = 0;
  sim::SimTime degrade_duration = 0;
  double degrade_factor = 4.0;
  // Machines whose NIC serializes slower than line rate on both ports
  // (wire-time multiplier), modeling a flaky or mis-negotiated link.
  std::vector<std::size_t> slow_nics;
  double slow_nic_factor = 1.0;
  // Deterministic crash-stop schedule (see CrashEvent). Entries may target
  // the same rank more than once (crash, restart, crash again).
  std::vector<CrashEvent> crashes;
  // Seed of the fault-decision stream.
  std::uint64_t seed = 0xfa017;

  bool any() const {
    return drop_prob > 0 || duplicate_prob > 0 ||
           (blackout_period > 0 && blackout_duration > 0) ||
           (degrade_period > 0 && degrade_duration > 0) ||
           (!slow_nics.empty() && slow_nic_factor != 1.0) || !crashes.empty();
  }

  // Rejects nonsensical configurations with a named error instead of
  // letting them silently skew a chaos run (a probability of 1.5, a window
  // longer than its period, a degrade factor that *speeds links up*...).
  // Called by the Fabric constructor; `machines` bounds rank references.
  void validate(std::size_t machines) const;
};

// Outcome of one transfer under fault injection. copies == 0: the message
// was dropped (the awaiting sender still paid the TX-side cost); 1: normal
// delivery; 2: the RX port delivered a duplicate.
struct Delivery {
  int copies = 1;

  bool delivered() const { return copies > 0; }
  bool duplicated() const { return copies > 1; }
};

struct NetConfig {
  // Effective per-port bandwidth. 56 Gb/s raw FDR InfiniBand delivers about
  // 6 GB/s of payload after encoding/protocol overhead.
  double link_bandwidth_Bps = 6.0e9;
  // One-way end-to-end latency through the switch.
  sim::SimTime latency = 2 * sim::kMicrosecond;
  // Software/NIC cost paid per message on the send side (the LogP 'o').
  sim::SimTime per_message_overhead = 1 * sim::kMicrosecond;
  // >1.0 models a blocking switch core; 1.0 = full bisection bandwidth.
  double oversubscription = 1.0;

  // Optional two-tier topology: machines group into racks of `rack_size`
  // (0 = flat network). Traffic between racks traverses the source rack's
  // shared up-link and the destination rack's shared down-link at
  // `uplink_bandwidth_Bps` (0 = link rate) and pays `inter_rack_latency`
  // on top of `latency`. An up-link slower than rack_size * link rate
  // models top-of-rack oversubscription.
  std::size_t rack_size = 0;
  double uplink_bandwidth_Bps = 0;
  sim::SimTime inter_rack_latency = 0;

  // Latency jitter: each transfer pays an extra uniform [0, jitter_ns)
  // drawn from a deterministic per-fabric stream. Zero disables. Used by
  // robustness tests to perturb message arrival orderings — engines must
  // stay correct under any interleaving the fabric can produce.
  sim::SimTime jitter_ns = 0;
  std::uint64_t jitter_seed = 0x71771e;

  // Fault injection; FaultConfig{} (the default) is a perfect fabric.
  FaultConfig faults{};
};

struct NicStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  // Fault counters, attributed to the receiving NIC: messages that never
  // reached it, and messages it delivered twice. A duplicate also counts
  // twice in messages_received/bytes_received (both copies crossed the RX
  // port).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  // Messages lost to a crash-stop machine, attributed to the dead NIC:
  // counted at the sender when the *source* was down (it transmitted
  // nothing) and at the receiver when the *destination* was down (the
  // fabric delivered into a dark port).
  std::uint64_t messages_crash_dropped = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, std::size_t machines, const NetConfig& cfg);

  std::size_t machines() const { return nics_.size(); }
  const NetConfig& config() const { return cfg_; }

  // Moves `bytes` from machine `src` to machine `dst`; completes when the
  // last byte has been delivered at dst (or, for a dropped message, when
  // the fabric lost it), reporting the delivery outcome. With faults
  // disabled the outcome is always one copy. src == dst is a caller error:
  // local movement is memory traffic, modeled by the runtime's cost model.
  sim::Task<Delivery> transfer(std::size_t src, std::size_t dst,
                               std::uint64_t bytes);

  // Uncontended duration of a single transfer (for tests / cost estimates).
  sim::SimTime uncontended_duration(std::uint64_t bytes) const;

  const NicStats& stats(std::size_t machine) const { return stats_[machine]; }
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  sim::SimTime tx_busy(std::size_t machine) const { return nics_[machine].tx.busy_time(); }
  sim::SimTime rx_busy(std::size_t machine) const { return nics_[machine].rx.busy_time(); }

  // Rack of a machine under the two-tier topology (machine id / rack_size);
  // always 0 on a flat network.
  std::size_t rack_of(std::size_t machine) const {
    return cfg_.rack_size ? machine / cfg_.rack_size : 0;
  }
  std::uint64_t inter_rack_bytes() const { return inter_rack_bytes_; }

  // Fault-counter aggregates.
  std::uint64_t total_dropped() const;
  std::uint64_t total_duplicated() const;
  std::uint64_t total_crash_dropped() const;

  // Crash-stop status: true when `machine` is dead at time `t` under the
  // configured crash schedule — a pure function of (schedule, t), so every
  // component (fabric, comm, detector, supervisor) agrees on liveness
  // without any shared mutable state.
  bool down(std::size_t machine, sim::SimTime t) const {
    for (const CrashEvent& c : cfg_.faults.crashes) {
      if (c.rank != machine || t < c.at) continue;
      if (c.restart_after == 0 || t < c.at + c.restart_after) return true;
    }
    return false;
  }

  // Earliest crash instant of `machine` in the half-open window (t0, t1],
  // if any — the recovery supervisor's "did anyone die during this
  // attempt?" query.
  std::optional<sim::SimTime> crashed_within(std::size_t machine,
                                             sim::SimTime t0,
                                             sim::SimTime t1) const {
    std::optional<sim::SimTime> first;
    for (const CrashEvent& c : cfg_.faults.crashes) {
      if (c.rank != machine || c.at <= t0 || c.at > t1) continue;
      if (!first || c.at < *first) first = c.at;
    }
    return first;
  }

  // Telemetry export: one machine's NicStats as net.nic.* counters plus its
  // port busy times as net.nic.*_busy_ns gauges — per-rank registries merge
  // into cluster totals (counters add, gauges keep the max).
  void export_metrics(obs::MetricsRegistry& reg, std::size_t machine) const;

 private:
  sim::SimTime wire_time(std::uint64_t bytes) const;
  // Phase-aligned transient window test: t falls in the first `duration`
  // of its `period`.
  static bool in_window(sim::SimTime t, sim::SimTime period,
                        sim::SimTime duration) {
    return period > 0 && duration > 0 && t % period < duration;
  }
  // Wire time through one machine's port, including its slow-NIC factor
  // and any degradation window active at time `at`.
  sim::SimTime port_wire_time(std::size_t machine, sim::SimTime wire,
                              sim::SimTime at) const;

  struct Nic {
    SerialLink tx;
    SerialLink rx;
  };
  struct Rack {
    SerialLink up;    // traffic leaving the rack
    SerialLink down;  // traffic entering the rack
  };

  sim::Simulator& sim_;
  NetConfig cfg_;
  std::vector<Nic> nics_;
  std::vector<NicStats> stats_;
  SerialLink switch_core_;
  double switch_core_bandwidth_Bps_;
  std::vector<Rack> racks_;
  double uplink_bandwidth_Bps_ = 0;
  std::uint64_t inter_rack_bytes_ = 0;
  Rng jitter_rng_{0};
  Rng fault_rng_{0};
  std::vector<double> nic_wire_factor_;  // per-machine slow-NIC multiplier
};

}  // namespace pgxd::net
