// Wire-frame header: trace-context metadata that rides every frame the
// comm layer pushes through the fabric. The span id is assigned by the
// sender once per logical message and is stable across retransmissions
// and fabric duplicates — it is what lets a receiver (and the trace
// exports built on sim::Trace::Flow) attribute any arriving physical
// frame back to the exact send that caused it, PGX.D-debuggability for
// the "why is this run slow" question the per-step timers cannot answer.
//
// The header models metadata that real fabrics carry in-band (cf. W3C
// trace-context / OpenTelemetry span propagation); its modeled wire cost
// is folded into the existing per-message byte counts rather than charged
// separately.
#pragma once

#include <cstdint>

namespace pgxd::net {

enum class FrameKind : std::uint8_t { kData = 0, kAck = 1 };

struct FrameHeader {
  // Sender-assigned causal span id; 0 = unstamped (a message that never
  // crossed the fabric, e.g. a local loopback post).
  std::uint64_t span_id = 0;
  FrameKind kind = FrameKind::kData;
  // Transmission attempt this frame rode (0 = first transmission); lets
  // the receiver side tag retransmit edges without consulting sender
  // state.
  std::uint16_t attempt = 0;

  FrameHeader() = default;
  FrameHeader(std::uint64_t span_id_in, FrameKind kind_in,
              std::uint16_t attempt_in)
      : span_id(span_id_in), kind(kind_in), attempt(attempt_in) {}
};

}  // namespace pgxd::net
