#include "net/fabric.hpp"

#include <cmath>

namespace pgxd::net {

void FaultConfig::validate(std::size_t machines) const {
  PGXD_CHECK_MSG(drop_prob >= 0.0 && drop_prob < 1.0,
                 "FaultConfig: drop_prob must lie in [0, 1)");
  PGXD_CHECK_MSG(duplicate_prob >= 0.0 && duplicate_prob <= 1.0,
                 "FaultConfig: duplicate_prob must lie in [0, 1]");
  PGXD_CHECK_MSG(blackout_period >= 0 && blackout_duration >= 0,
                 "FaultConfig: blackout window must be non-negative");
  PGXD_CHECK_MSG(degrade_period >= 0 && degrade_duration >= 0,
                 "FaultConfig: degrade window must be non-negative");
  PGXD_CHECK_MSG(blackout_duration <= std::max<sim::SimTime>(blackout_period, 0),
                 "FaultConfig: blackout_duration must not exceed blackout_period");
  PGXD_CHECK_MSG(degrade_duration <= std::max<sim::SimTime>(degrade_period, 0),
                 "FaultConfig: degrade_duration must not exceed degrade_period");
  PGXD_CHECK_MSG(degrade_factor >= 1.0,
                 "FaultConfig: degrade_factor must be >= 1 (windows slow links "
                 "down, never speed them up)");
  PGXD_CHECK_MSG(slow_nic_factor >= 1.0,
                 "FaultConfig: slow_nic_factor must be >= 1");
  for (std::size_t m : slow_nics)
    PGXD_CHECK_MSG(m < machines, "FaultConfig: slow_nics names a machine out "
                                 "of range");
  for (const CrashEvent& c : crashes) {
    PGXD_CHECK_MSG(c.rank < machines,
                   "FaultConfig: crashes names a rank out of range");
    PGXD_CHECK_MSG(c.at >= 0, "FaultConfig: crash_time must be non-negative");
    PGXD_CHECK_MSG(c.restart_after >= 0,
                   "FaultConfig: restart_after must be non-negative");
  }
}

Fabric::Fabric(sim::Simulator& sim, std::size_t machines, const NetConfig& cfg)
    : sim_(sim), cfg_(cfg), nics_(machines), stats_(machines) {
  PGXD_CHECK(machines > 0);
  PGXD_CHECK(cfg.link_bandwidth_Bps > 0);
  PGXD_CHECK(cfg.oversubscription >= 1.0);
  const FaultConfig& fc = cfg.faults;
  fc.validate(machines);
  nic_wire_factor_.assign(machines, 1.0);
  for (std::size_t m : fc.slow_nics) nic_wire_factor_[m] = fc.slow_nic_factor;
  fault_rng_ = Rng(fc.seed);
  // A non-blocking switch core carries every port at line rate; with
  // oversubscription f, aggregate core bandwidth shrinks by f.
  switch_core_bandwidth_Bps_ = cfg.link_bandwidth_Bps *
                               static_cast<double>(machines) /
                               cfg.oversubscription;
  if (cfg.rack_size > 0) {
    racks_.resize((machines + cfg.rack_size - 1) / cfg.rack_size);
    uplink_bandwidth_Bps_ = cfg.uplink_bandwidth_Bps > 0
                                ? cfg.uplink_bandwidth_Bps
                                : cfg.link_bandwidth_Bps;
  }
  jitter_rng_ = Rng(cfg.jitter_seed);
}

sim::SimTime Fabric::wire_time(std::uint64_t bytes) const {
  return static_cast<sim::SimTime>(
      std::ceil(static_cast<double>(bytes) / cfg_.link_bandwidth_Bps *
                static_cast<double>(sim::kSecond)));
}

sim::SimTime Fabric::uncontended_duration(std::uint64_t bytes) const {
  // TX serialization dominates; RX overlaps with TX except for the final
  // cut-through segment, so the lower bound is o + wire + latency.
  return cfg_.per_message_overhead + wire_time(bytes) + cfg_.latency;
}

sim::SimTime Fabric::port_wire_time(std::size_t machine, sim::SimTime wire,
                                    sim::SimTime at) const {
  double factor = nic_wire_factor_[machine];
  if (in_window(at, cfg_.faults.degrade_period, cfg_.faults.degrade_duration))
    factor *= cfg_.faults.degrade_factor;
  if (factor == 1.0) return wire;
  return static_cast<sim::SimTime>(
      std::ceil(static_cast<double>(wire) * factor));
}

sim::Task<Delivery> Fabric::transfer(std::size_t src, std::size_t dst,
                                     std::uint64_t bytes) {
  PGXD_CHECK(src < nics_.size() && dst < nics_.size());
  PGXD_CHECK_MSG(src != dst, "local transfers do not traverse the fabric");

  // A crash-stopped source transmits nothing: the message dies at zero
  // cost and zero port occupancy, before any accounting — a dead host
  // issues no DMA and pays no overhead.
  if (down(src, sim_.now())) {
    stats_[src].messages_crash_dropped += 1;
    co_return Delivery{0};
  }

  stats_[src].bytes_sent += bytes;
  stats_[src].messages_sent += 1;

  const sim::SimTime wire = wire_time(bytes);

  // Per-message fault decisions, drawn up front (in process execution
  // order) from the dedicated fault stream so they replay exactly.
  const FaultConfig& fc = cfg_.faults;
  bool drop = fc.drop_prob > 0 && fault_rng_.uniform() < fc.drop_prob;
  const bool dup =
      !drop && fc.duplicate_prob > 0 && fault_rng_.uniform() < fc.duplicate_prob;

  // Send side: software overhead, then the TX port serializes the payload.
  co_await nics_[src].tx.occupy(
      sim_, cfg_.per_message_overhead + port_wire_time(src, wire, sim_.now()));

  // The message enters the switch now; a blackout window active at this
  // instant (or a loss drawn above) kills it before the RX port.
  if (!drop && in_window(sim_.now(), fc.blackout_period, fc.blackout_duration))
    drop = true;
  if (drop) {
    stats_[dst].messages_dropped += 1;
    co_return Delivery{0};
  }

  // Switch core contention (a no-op-sized reservation at full bisection).
  if (cfg_.oversubscription > 1.0) {
    const auto core = static_cast<sim::SimTime>(
        std::ceil(static_cast<double>(bytes) / switch_core_bandwidth_Bps_ *
                  static_cast<double>(sim::kSecond)));
    co_await switch_core_.occupy(sim_, core);
  }

  // Two-tier topology: a rack-crossing transfer serializes through the
  // source rack's shared up-link and the destination rack's down-link.
  if (cfg_.rack_size > 0 && rack_of(src) != rack_of(dst)) {
    inter_rack_bytes_ += bytes;
    const auto uplink_time = static_cast<sim::SimTime>(
        std::ceil(static_cast<double>(bytes) / uplink_bandwidth_Bps_ *
                  static_cast<double>(sim::kSecond)));
    co_await racks_[rack_of(src)].up.occupy(sim_, uplink_time);
    co_await sim_.delay(cfg_.inter_rack_latency);
    co_await racks_[rack_of(dst)].down.occupy(sim_, uplink_time);
  }

  // Propagation through the fabric (plus deterministic jitter, if enabled).
  sim::SimTime propagation = cfg_.latency;
  if (cfg_.jitter_ns > 0)
    propagation += static_cast<sim::SimTime>(
        jitter_rng_.bounded(static_cast<std::uint64_t>(cfg_.jitter_ns)));
  co_await sim_.delay(propagation);

  // A destination that is crash-stopped when the head of the message
  // arrives has a dark RX port: the fabric discards the payload silently
  // (the sender already paid the TX cost — exactly the asymmetry that
  // makes retransmitting to a dead peer expensive).
  if (down(dst, sim_.now())) {
    stats_[dst].messages_crash_dropped += 1;
    co_return Delivery{0};
  }

  // Receive side: the RX port serializes delivery into the host.
  // Cut-through: the head of the message reached dst while the tail was
  // still serializing at src, so only the final segment is charged here.
  // We approximate cut-through as full store-and-forward for short messages
  // and charge the RX port the full wire time; this keeps incast costs
  // honest (N senders into one RX port serialize to N * wire). A duplicate
  // crosses the RX port twice, back to back.
  const int copies = dup ? 2 : 1;
  for (int c = 0; c < copies; ++c)
    co_await nics_[dst].rx.occupy(sim_, port_wire_time(dst, wire, sim_.now()));

  stats_[dst].bytes_received += static_cast<std::uint64_t>(copies) * bytes;
  stats_[dst].messages_received += static_cast<std::uint64_t>(copies);
  if (dup) stats_[dst].messages_duplicated += 1;
  co_return Delivery{copies};
}

std::uint64_t Fabric::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_sent;
  return total;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messages_sent;
  return total;
}

std::uint64_t Fabric::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messages_dropped;
  return total;
}

std::uint64_t Fabric::total_duplicated() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messages_duplicated;
  return total;
}

std::uint64_t Fabric::total_crash_dropped() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messages_crash_dropped;
  return total;
}

void Fabric::export_metrics(obs::MetricsRegistry& reg,
                            std::size_t machine) const {
  const NicStats& s = stats_[machine];
  reg.counter("net.nic.bytes_sent").inc(s.bytes_sent);
  reg.counter("net.nic.bytes_received").inc(s.bytes_received);
  reg.counter("net.nic.messages_sent").inc(s.messages_sent);
  reg.counter("net.nic.messages_received").inc(s.messages_received);
  reg.counter("net.nic.messages_dropped").inc(s.messages_dropped);
  reg.counter("net.nic.messages_duplicated").inc(s.messages_duplicated);
  reg.counter("net.nic.messages_crash_dropped").inc(s.messages_crash_dropped);
  reg.gauge("net.nic.tx_busy_ns")
      .set(static_cast<double>(nics_[machine].tx.busy_time()));
  reg.gauge("net.nic.rx_busy_ns")
      .set(static_cast<double>(nics_[machine].rx.busy_time()));
}

}  // namespace pgxd::net
