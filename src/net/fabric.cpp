#include "net/fabric.hpp"

#include <cmath>

namespace pgxd::net {

Fabric::Fabric(sim::Simulator& sim, std::size_t machines, const NetConfig& cfg)
    : sim_(sim), cfg_(cfg), nics_(machines), stats_(machines) {
  PGXD_CHECK(machines > 0);
  PGXD_CHECK(cfg.link_bandwidth_Bps > 0);
  PGXD_CHECK(cfg.oversubscription >= 1.0);
  // A non-blocking switch core carries every port at line rate; with
  // oversubscription f, aggregate core bandwidth shrinks by f.
  switch_core_bandwidth_Bps_ = cfg.link_bandwidth_Bps *
                               static_cast<double>(machines) /
                               cfg.oversubscription;
  if (cfg.rack_size > 0) {
    racks_.resize((machines + cfg.rack_size - 1) / cfg.rack_size);
    uplink_bandwidth_Bps_ = cfg.uplink_bandwidth_Bps > 0
                                ? cfg.uplink_bandwidth_Bps
                                : cfg.link_bandwidth_Bps;
  }
  jitter_rng_ = Rng(cfg.jitter_seed);
}

sim::SimTime Fabric::wire_time(std::uint64_t bytes) const {
  return static_cast<sim::SimTime>(
      std::ceil(static_cast<double>(bytes) / cfg_.link_bandwidth_Bps *
                static_cast<double>(sim::kSecond)));
}

sim::SimTime Fabric::uncontended_duration(std::uint64_t bytes) const {
  // TX serialization dominates; RX overlaps with TX except for the final
  // cut-through segment, so the lower bound is o + wire + latency.
  return cfg_.per_message_overhead + wire_time(bytes) + cfg_.latency;
}

sim::Task<void> Fabric::transfer(std::size_t src, std::size_t dst,
                                 std::uint64_t bytes) {
  PGXD_CHECK(src < nics_.size() && dst < nics_.size());
  PGXD_CHECK_MSG(src != dst, "local transfers do not traverse the fabric");

  stats_[src].bytes_sent += bytes;
  stats_[src].messages_sent += 1;

  const sim::SimTime wire = wire_time(bytes);

  // Send side: software overhead, then the TX port serializes the payload.
  co_await nics_[src].tx.occupy(sim_, cfg_.per_message_overhead + wire);

  // Switch core contention (a no-op-sized reservation at full bisection).
  if (cfg_.oversubscription > 1.0) {
    const auto core = static_cast<sim::SimTime>(
        std::ceil(static_cast<double>(bytes) / switch_core_bandwidth_Bps_ *
                  static_cast<double>(sim::kSecond)));
    co_await switch_core_.occupy(sim_, core);
  }

  // Two-tier topology: a rack-crossing transfer serializes through the
  // source rack's shared up-link and the destination rack's down-link.
  if (cfg_.rack_size > 0 && rack_of(src) != rack_of(dst)) {
    inter_rack_bytes_ += bytes;
    const auto uplink_time = static_cast<sim::SimTime>(
        std::ceil(static_cast<double>(bytes) / uplink_bandwidth_Bps_ *
                  static_cast<double>(sim::kSecond)));
    co_await racks_[rack_of(src)].up.occupy(sim_, uplink_time);
    co_await sim_.delay(cfg_.inter_rack_latency);
    co_await racks_[rack_of(dst)].down.occupy(sim_, uplink_time);
  }

  // Propagation through the fabric (plus deterministic jitter, if enabled).
  sim::SimTime propagation = cfg_.latency;
  if (cfg_.jitter_ns > 0)
    propagation += static_cast<sim::SimTime>(
        jitter_rng_.bounded(static_cast<std::uint64_t>(cfg_.jitter_ns)));
  co_await sim_.delay(propagation);

  // Receive side: the RX port serializes delivery into the host.
  // Cut-through: the head of the message reached dst while the tail was
  // still serializing at src, so only the final segment is charged here.
  // We approximate cut-through as full store-and-forward for short messages
  // and charge the RX port the full wire time; this keeps incast costs
  // honest (N senders into one RX port serialize to N * wire).
  co_await nics_[dst].rx.occupy(sim_, wire);

  stats_[dst].bytes_received += bytes;
  stats_[dst].messages_received += 1;
}

std::uint64_t Fabric::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_sent;
  return total;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messages_sent;
  return total;
}

}  // namespace pgxd::net
