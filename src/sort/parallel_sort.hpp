// Step (1) of the paper's pipeline: local parallel sort.
//
// "data is divided equally among a number of the worker threads ... each
// worker thread sorts its data locally. Sorted data from each thread is
// merged together by keeping balanced merging." — Sec. IV-A.
//
// The chunking guarantees the Fig. 2 merge tree starts from equal-sized
// runs, which is what makes every later merge balanced.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/comparator.hpp"
#include "sort/quicksort.hpp"

namespace pgxd::sort {

struct ParallelSortStats {
  std::size_t chunks = 0;
  BalancedMergeStats merge;
};

// Sorts `data` using `chunks` equal pieces (defaults to pool workers + 1).
// `scratch` is reused across calls to avoid reallocation in the hot path.
template <typename T, typename Comp = Less>
ParallelSortStats parallel_sort(std::vector<T>& data, std::vector<T>& scratch,
                                Comp comp = {}, ThreadPool* pool = nullptr,
                                std::size_t chunks = 0,
                                const QuicksortConfig& qcfg = {}) {
  ParallelSortStats stats;
  const std::size_t n = data.size();
  if (chunks == 0) chunks = pool ? pool->workers() + 1 : 1;
  // Don't create chunks smaller than the insertion-sort cutoff.
  chunks = std::max<std::size_t>(
      1, std::min(chunks, n / (kInsertionCutoff + 1) + 1));
  stats.chunks = chunks;

  if (chunks == 1 || n < 2) {
    quicksort(std::span<T>(data), comp, qcfg);
    return stats;
  }

  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  // Dispatch by chunk index through the allocation-free run_all overload —
  // no per-chunk closure is ever heap-allocated.
  const auto sort_chunk = [&](std::size_t c) {
    quicksort(std::span<T>(data).subspan(bounds[c], bounds[c + 1] - bounds[c]),
              comp, qcfg);
  };
  if (pool)
    pool->run_all(chunks, sort_chunk);
  else
    for (std::size_t c = 0; c < chunks; ++c) sort_chunk(c);

  stats.merge = balanced_merge(data, std::move(bounds), scratch, comp, pool);
  return stats;
}

// Convenience overload that owns its scratch buffer.
template <typename T, typename Comp = Less>
ParallelSortStats parallel_sort(std::vector<T>& data, Comp comp = {},
                                ThreadPool* pool = nullptr,
                                std::size_t chunks = 0,
                                const QuicksortConfig& qcfg = {}) {
  std::vector<T> scratch;
  return parallel_sort(data, scratch, comp, pool, chunks, qcfg);
}

}  // namespace pgxd::sort
