// Partitioning strategies — the splitter-determination seam of the
// pipeline, factored out of the one-shot sample path so the sorter can
// scale past the paper's single-level scheme.
//
//   kOneLevelSample  — the paper's regular sampling (Sec. IV steps 2-3):
//                      every rank ships X = read_buffer / p bytes of
//                      samples to the master, which selects p-1 splitters
//                      in one shot. No balance guarantee beyond the sample
//                      density.
//   kHistogramRefine — Histogram Sort with Sampling (Harsh, Kale,
//                      Solomonik): the master starts from a *small* sample
//                      and iteratively certifies candidate splitters by
//                      their exact global ranks (a histogram round),
//                      drawing new candidates inside the still-unresolved
//                      rank brackets until every boundary is within the
//                      configured epsilon of its target rank or the round
//                      budget is spent. Guaranteed eps-balance on distinct
//                      keys with provably fewer samples.
//   kTwoLevelAms     — AMS-style two-level recursion (Axtmann et al.,
//                      "Practical Massively Parallel Sorting"): ranks are
//                      split into ~sqrt(p) contiguous groups; a coarse
//                      splitter set routes whole buckets to one partner
//                      per group (fan-out sqrt(p), not p), then each group
//                      runs the one-level partition internally. Caps both
//                      per-rank connection count and the O(p^2) control
//                      volume of the flat scheme.
//
// Everything in this header is pure host-side logic (no simulation state):
// the master-side refinement engine, the member-side rank-counting and
// candidate-draw kernels, the AMS group geometry, and the closed-form
// control-volume model the crossover bench extrapolates with.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"

namespace pgxd::sort {

// Partition strategy (SortConfig::partition).
enum class PartitionScheme {
  kOneLevelSample,   // paper baseline: one-shot regular sampling
  kHistogramRefine,  // iterative splitter refinement to an epsilon target
  kTwoLevelAms,      // two-level recursion over ~sqrt(p) rank groups
};

// ---- AMS group geometry ----------------------------------------------------

// Number of rank groups for a q-member sort: ~sqrt(q), at least 2, and
// never more than q/2 so every group has >= 2 members. Memberships too
// small to split (q < 4) collapse to one group, i.e. the flat scheme.
inline std::size_t ams_group_count(std::size_t q) {
  if (q < 4) return 1;
  const auto g = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(q))));
  return std::clamp<std::size_t>(g, 2, q / 2);
}

// Contiguous balanced group layout over member indices 0..q-1. Contiguity
// is load-bearing: the coarse splitters order the groups, so contiguous
// member ranges keep the global output sorted by rank.
struct AmsLayout {
  std::size_t q = 0;
  std::size_t groups = 1;
  std::vector<std::size_t> start;  // groups + 1 prefix over member indices

  std::size_t size(std::size_t g) const { return start[g + 1] - start[g]; }
  std::size_t group_of(std::size_t member_idx) const {
    PGXD_DCHECK(member_idx < q);
    // groups ~ sqrt(q): a linear scan is cheaper than it looks and runs
    // once per rank per sort.
    std::size_t g = 0;
    while (start[g + 1] <= member_idx) ++g;
    return g;
  }
  // The one member of group `g` that receives sender `sender_idx`'s bucket
  // for that group. Spreading senders round-robin over the group keeps the
  // level-1 fan-in balanced at ~q/size(g) senders per receiver.
  std::size_t partner(std::size_t sender_idx, std::size_t g) const {
    return start[g] + sender_idx % size(g);
  }
};

inline AmsLayout ams_layout(std::size_t q) {
  AmsLayout l;
  l.q = q;
  l.groups = ams_group_count(q);
  l.start.assign(l.groups + 1, 0);
  const std::size_t base = q / l.groups;
  const std::size_t rem = q % l.groups;
  for (std::size_t g = 0; g < l.groups; ++g)
    l.start[g + 1] = l.start[g] + base + (g < rem ? 1 : 0);
  PGXD_CHECK(l.start[l.groups] == q);
  return l;
}

// ---- Histogram refinement: member-side kernels -----------------------------

// Exact local rank bracket of each probe key over this rank's sorted data:
// lo[i] = #keys strictly below probes[i], hi[i] = #keys <= probes[i].
// Summed across ranks these become exact global rank brackets — the
// histogram round's payload. Probes must be sorted (brackets then come out
// monotone, which the master relies on).
template <typename Key, typename Comp = Less>
void count_ranks(std::span<const Key> sorted, std::span<const Key> probes,
                 std::vector<std::uint64_t>& lo, std::vector<std::uint64_t>& hi,
                 Comp comp = {}) {
  PGXD_DCHECK(std::is_sorted(sorted.begin(), sorted.end(), comp));
  PGXD_DCHECK(std::is_sorted(probes.begin(), probes.end(), comp));
  lo.resize(probes.size());
  hi.resize(probes.size());
  auto it_lo = sorted.begin();
  auto it_hi = sorted.begin();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    it_lo = std::lower_bound(it_lo, sorted.end(), probes[i], comp);
    it_hi = std::upper_bound(it_hi, sorted.end(), probes[i], comp);
    lo[i] = static_cast<std::uint64_t>(it_lo - sorted.begin());
    hi[i] = static_cast<std::uint64_t>(it_hi - sorted.begin());
  }
}

// A half-open key interval a draw request asks candidates from. Ends are
// exclusive: keys equal to `lo` or `hi` already have certified ranks.
// has_lo/has_hi false means the interval is open toward -inf/+inf.
template <typename Key>
struct RefineInterval {
  Key lo{};
  Key hi{};
  bool has_lo = false;
  bool has_hi = false;
};

// Up to `per_interval` evenly spaced local keys strictly inside each
// interval — the member-side half of a draw round. Returns candidates for
// all intervals concatenated (the master dedups against known keys).
template <typename Key, typename Comp = Less>
std::vector<Key> draw_candidates(std::span<const Key> sorted,
                                 std::span<const RefineInterval<Key>> intervals,
                                 std::size_t per_interval, Comp comp = {}) {
  std::vector<Key> out;
  for (const auto& iv : intervals) {
    auto first = iv.has_lo
                     ? std::upper_bound(sorted.begin(), sorted.end(), iv.lo, comp)
                     : sorted.begin();
    auto last = iv.has_hi
                    ? std::lower_bound(first, sorted.end(), iv.hi, comp)
                    : sorted.end();
    const auto m = static_cast<std::size_t>(last - first);
    if (m == 0) continue;
    const std::size_t take = std::min(per_interval, m);
    for (std::size_t i = 0; i < take; ++i)
      out.push_back(first[(i + 1) * m / (take + 1)]);
  }
  return out;
}

// ---- Histogram refinement: master-side engine ------------------------------

// Pure refinement state machine driven by the master rank: feed it exact
// global rank brackets for probe keys, ask it which key intervals still
// need candidates, feed it the draws, repeat. Terminates when every
// boundary's best candidate is within tol = eps * N / (2q) of its target
// rank, or when an interval is exhausted (no key exists strictly inside
// it, so no better splitter exists — duplicate-heavy data; the partition
// plan's duplicate-splitter investigator restores balance downstream).
template <typename Key, typename Comp = Less>
class HistogramRefiner {
 public:
  HistogramRefiner(std::size_t parts, std::uint64_t total_n, double epsilon,
                   Comp comp = {})
      : parts_(parts), total_n_(total_n), comp_(comp) {
    PGXD_CHECK(parts >= 1);
    PGXD_CHECK(epsilon > 0.0);
    const double t = epsilon * static_cast<double>(total_n) /
                     (2.0 * static_cast<double>(parts));
    tol_ = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(t));
    targets_.resize(parts >= 1 ? parts - 1 : 0);
    for (std::size_t j = 0; j + 1 < parts; ++j)
      targets_[j] = (static_cast<std::uint64_t>(j) + 1) * total_n / parts;
    resolved_.assign(targets_.size(), targets_.empty());
  }

  // Registers candidate keys with unknown ranks; returns the deduplicated
  // sorted probe set to be counted this round. Keys already certified are
  // dropped.
  std::vector<Key> seed(std::vector<Key> candidates) {
    std::sort(candidates.begin(), candidates.end(), comp_);
    std::vector<Key> fresh;
    for (const Key& k : candidates) {
      if (!fresh.empty() && !comp_(fresh.back(), k)) continue;  // dup in batch
      if (known(k)) continue;
      fresh.push_back(k);
    }
    pending_ = fresh;
    return fresh;
  }

  // Absorbs the summed global rank brackets for the probe set returned by
  // the last seed() call (lo[i]/hi[i] belong to that set's i-th key), then
  // re-evaluates which boundaries are resolved. One call == one round.
  void absorb_counts(const std::vector<std::uint64_t>& lo,
                     const std::vector<std::uint64_t>& hi) {
    PGXD_CHECK(lo.size() == pending_.size() && hi.size() == pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      PGXD_CHECK_MSG(lo[i] <= hi[i] && hi[i] <= total_n_,
                     "histogram round returned an impossible rank bracket");
      cands_.push_back(Cand{pending_[i], lo[i], hi[i]});
    }
    probe_keys_ += pending_.size();
    pending_.clear();
    std::sort(cands_.begin(), cands_.end(),
              [this](const Cand& a, const Cand& b) {
                return comp_(a.key, b.key);
              });
    ++rounds_;
    for (std::size_t j = 0; j < targets_.size(); ++j)
      if (!resolved_[j] && best_err(j) <= tol_) resolved_[j] = true;
  }

  bool done() const {
    for (bool r : resolved_)
      if (!r) return false;
    return true;
  }

  // Key intervals bracketing each unresolved boundary's target rank;
  // adjacent boundaries sharing a bracket are merged into one interval.
  std::vector<RefineInterval<Key>> draw_intervals() const {
    std::vector<RefineInterval<Key>> out;
    for (std::size_t j = 0; j < targets_.size(); ++j) {
      if (resolved_[j]) continue;
      RefineInterval<Key> iv = bracket(targets_[j]);
      if (!out.empty() && same_interval(out.back(), iv)) continue;
      out.push_back(iv);
    }
    return out;
  }

  // Every member contributes draws per interval, so the raw pool grows
  // O(q) keys per unresolved interval cluster-wide; probing all of it
  // would put O(q^2) keys per round on the wire without converging any
  // faster than an evenly spaced subset (draws are rank-uniform inside
  // the bracket either way). The cap bounds the next probe set at
  // kProbeCapPerInterval * intervals keys.
  static constexpr std::size_t kProbeCapPerInterval = 8;

  // Registers a draw round's yield and marks boundaries whose interval
  // produced nothing as exhausted (no key exists strictly inside the
  // bracket, so the best certified candidate is final). Returns the fresh
  // probe set for the next counting round, capped per interval.
  std::vector<Key> absorb_draws(std::vector<Key> drawn) {
    std::sort(drawn.begin(), drawn.end(), comp_);
    std::vector<Key> pool;
    for (const Key& k : drawn) {
      if (!pool.empty() && !comp_(pool.back(), k)) continue;  // dup in batch
      if (known(k)) continue;
      pool.push_back(k);
    }
    std::vector<Key> capped;
    for (const RefineInterval<Key>& iv : draw_intervals()) {
      auto first = iv.has_lo ? std::upper_bound(pool.begin(), pool.end(),
                                                iv.lo, comp_)
                             : pool.begin();
      auto last = iv.has_hi
                      ? std::lower_bound(first, pool.end(), iv.hi, comp_)
                      : pool.end();
      const auto avail = static_cast<std::size_t>(last - first);
      const std::size_t take = std::min(kProbeCapPerInterval, avail);
      for (std::size_t i = 0; i < take; ++i)
        capped.push_back(first[(i + 1) * avail / (take + 1)]);
    }
    std::vector<Key> fresh = seed(std::move(capped));
    for (std::size_t j = 0; j < targets_.size(); ++j) {
      if (resolved_[j]) continue;
      const RefineInterval<Key> iv = bracket(targets_[j]);
      bool fed = false;
      for (const Key& k : fresh) {
        const bool above_lo = !iv.has_lo || comp_(iv.lo, k);
        const bool below_hi = !iv.has_hi || comp_(k, iv.hi);
        if (above_lo && below_hi) {
          fed = true;
          break;
        }
      }
      if (!fed) resolved_[j] = true;  // exhausted: nothing left to certify
    }
    return fresh;
  }

  // Final splitters: per boundary the certified candidate with the
  // smallest rank error, chosen left-to-right with a monotone index floor
  // so the result is sorted even when errors tie across boundaries.
  std::vector<Key> splitters() const {
    std::vector<Key> out;
    if (targets_.empty()) return out;
    // No certified candidates only happens when the whole dataset is
    // (close to) empty — mirror select_splitters' degenerate behavior.
    if (cands_.empty()) return std::vector<Key>(targets_.size(), Key{});
    out.reserve(targets_.size());
    std::size_t floor_idx = 0;
    for (std::size_t j = 0; j < targets_.size(); ++j) {
      std::size_t best = floor_idx;
      std::uint64_t be = err(cands_[floor_idx], targets_[j]);
      for (std::size_t c = floor_idx + 1; c < cands_.size(); ++c) {
        const std::uint64_t e = err(cands_[c], targets_[j]);
        if (e < be) {
          be = e;
          best = c;
        }
        if (cands_[c].lo > targets_[j] + be) break;  // monotone: only worse
      }
      out.push_back(cands_[best].key);
      floor_idx = best;
    }
    return out;
  }

  // Worst relative boundary error, in the epsilon metric: eps_achieved =
  // 2q * max_err / N, i.e. the smallest epsilon this refinement would have
  // satisfied.
  double achieved_epsilon() const {
    if (targets_.empty() || total_n_ == 0) return 0.0;
    std::uint64_t worst = 0;
    for (std::size_t j = 0; j < targets_.size(); ++j)
      worst = std::max(worst, best_err(j));
    return 2.0 * static_cast<double>(parts_) * static_cast<double>(worst) /
           static_cast<double>(total_n_);
  }

  std::size_t rounds() const { return rounds_; }
  std::size_t probe_keys() const { return probe_keys_; }
  std::uint64_t tolerance() const { return tol_; }
  // Desired global rank of boundary j (j+1 parts to its left).
  std::uint64_t target(std::size_t j) const { return targets_[j]; }

 private:
  struct Cand {
    Key key;
    std::uint64_t lo;  // global rank bracket: #keys < key ...
    std::uint64_t hi;  // ... #keys <= key
  };

  static std::uint64_t err(const Cand& c, std::uint64_t target) {
    if (c.lo > target) return c.lo - target;
    if (c.hi < target) return target - c.hi;
    return 0;
  }

  std::uint64_t best_err(std::size_t j) const {
    std::uint64_t be = std::numeric_limits<std::uint64_t>::max();
    for (const Cand& c : cands_) be = std::min(be, err(c, targets_[j]));
    return be;
  }

  bool known(const Key& k) const {
    for (const Cand& c : cands_)
      if (!comp_(c.key, k) && !comp_(k, c.key)) return true;
    return false;
  }

  // Tightest certified bracket around a target rank: the largest candidate
  // whose whole bracket sits below the target, and the smallest whose
  // whole bracket sits above.
  RefineInterval<Key> bracket(std::uint64_t target) const {
    RefineInterval<Key> iv;
    for (const Cand& c : cands_) {
      if (c.hi < target) {
        iv.lo = c.key;
        iv.has_lo = true;
      } else if (c.lo > target) {
        iv.hi = c.key;
        iv.has_hi = true;
        break;  // candidates are sorted: first one past is the tightest
      }
    }
    return iv;
  }

  bool same_interval(const RefineInterval<Key>& a,
                     const RefineInterval<Key>& b) const {
    auto eq = [this](const Key& x, const Key& y) {
      return !comp_(x, y) && !comp_(y, x);
    };
    return a.has_lo == b.has_lo && a.has_hi == b.has_hi &&
           (!a.has_lo || eq(a.lo, b.lo)) && (!a.has_hi || eq(a.hi, b.hi));
  }

  std::size_t parts_;
  std::uint64_t total_n_;
  Comp comp_;
  std::uint64_t tol_ = 1;
  std::vector<std::uint64_t> targets_;
  std::vector<bool> resolved_;
  std::vector<Cand> cands_;  // sorted by key
  std::vector<Key> pending_;
  std::size_t rounds_ = 0;
  std::size_t probe_keys_ = 0;
};

// ---- Control-volume model --------------------------------------------------

// Closed-form control-plane wire volume per scheme (samples + splitter
// broadcast + counts + histogram probes), used by the crossover ablation to
// extrapolate the O(q^2) schemes past what a simulated run can execute.
// Mirrors the sorter's actual message shapes: slim one-u64 counts, key-only
// sample/splitter frames.
struct PartitionVolume {
  std::uint64_t sample_bytes = 0;
  std::uint64_t splitter_bytes = 0;
  std::uint64_t counts_bytes = 0;
  std::uint64_t probe_bytes = 0;

  std::uint64_t total() const {
    return sample_bytes + splitter_bytes + counts_bytes + probe_bytes;
  }
};

// Fraction of the one-level sample each rank ships under kHistogramRefine;
// the refinement rounds buy back the precision the smaller sample gives up.
inline constexpr std::uint64_t kHistogramSampleDivisor = 8;
// Candidate keys each member returns per unresolved interval per round.
inline constexpr std::size_t kDrawPerInterval = 4;

inline PartitionVolume model_control_volume(PartitionScheme scheme,
                                            std::uint64_t q,
                                            std::uint64_t key_bytes,
                                            std::uint64_t sample_keys_per_rank,
                                            std::uint64_t rounds,
                                            std::uint64_t probes_per_round) {
  PartitionVolume v;
  const std::uint64_t cnt_bytes = sizeof(std::uint64_t);
  // Mirrors the sorter's Step-4 shape: per-pair slim u64s up to 64 scope
  // members, master-relayed q-entry vectors (2q^2 transient) beyond.
  const auto exchange_counts = [&](std::uint64_t scope) {
    return scope > 64 ? 2 * scope * scope * cnt_bytes
                      : scope * (scope - 1) * cnt_bytes;
  };
  switch (scheme) {
    case PartitionScheme::kOneLevelSample:
      v.sample_bytes = q * sample_keys_per_rank * key_bytes;
      v.splitter_bytes = q * (q - 1) * key_bytes;
      v.counts_bytes = exchange_counts(q);
      break;
    case PartitionScheme::kHistogramRefine:
      v.sample_bytes =
          q * std::max<std::uint64_t>(
                  2, sample_keys_per_rank / kHistogramSampleDivisor) *
          key_bytes;
      v.splitter_bytes = q * (q - 1) * key_bytes;
      v.counts_bytes = exchange_counts(q);
      // Per round: the probe broadcast (key each) plus every member's two
      // rank counts per probe, then the draw round's interval request and
      // candidate replies.
      v.probe_bytes = rounds * q * probes_per_round *
                      (key_bytes + 2 * cnt_bytes + 3 * key_bytes);
      break;
    case PartitionScheme::kTwoLevelAms: {
      const std::uint64_t g = ams_group_count(q);
      const std::uint64_t gsz = (q + g - 1) / g;
      // Level 1: full-density samples to the master, g-1 coarse splitters
      // to everyone, one count per (sender, foreign group) pair.
      v.sample_bytes = q * sample_keys_per_rank * key_bytes;
      v.splitter_bytes = q * (g - 1) * key_bytes;
      v.counts_bytes = q * (g - 1) * cnt_bytes;
      // Level 2, per group of ~gsz members: the flat scheme at sqrt scale.
      v.sample_bytes += q * sample_keys_per_rank * key_bytes;
      v.splitter_bytes += g * gsz * (gsz - 1) * key_bytes;
      v.counts_bytes += g * exchange_counts(gsz);
      break;
    }
  }
  return v;
}

}  // namespace pgxd::sort
