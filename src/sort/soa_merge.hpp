// Structure-of-arrays variant of the Fig. 2 balanced merge for the
// distributed final merge (paper step 6).
//
// The AoS path merges full Item{key, provenance} records through every tree
// level, moving sizeof(Item) bytes per element per level. Here the runs are
// split into a Key array and a compact u32 permutation: the Merge-Path
// kernel merges the keys and carries the permutation alongside, so each
// level moves only sizeof(Key) + 4 bytes per element, and provenance is
// reconstructed once at the end from the permutation (see the caller in
// src/core/distributed_sort.hpp). The result is reported in place — a
// `in_scratch` flag says which buffer holds it — so the last level never
// pays a staging copy-back; the reconstruction pass reads from wherever the
// data landed and writes directly into the output partition.
//
// Stability: ties resolve toward the run with the lower index (same
// convention as merge_into), so with an identity-initialized permutation,
// equal keys keep ascending permutation values throughout.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sort/balanced_merge.hpp"
#include "sort/comparator.hpp"
#include "sort/merge.hpp"

namespace pgxd::sort {

// One independent piece of a key+permutation merge. Like MergeSegment, a POD
// descriptor stored in a reusable per-level vector.
template <typename K>
struct SoaMergeSegment {
  const K* a_key = nullptr;
  const K* b_key = nullptr;
  const std::uint32_t* a_perm = nullptr;
  const std::uint32_t* b_perm = nullptr;
  K* out_key = nullptr;
  std::uint32_t* out_perm = nullptr;
  std::size_t a_n = 0;
  std::size_t b_n = 0;
};

// Stable sequential merge of the segment's two key runs, moving the
// permutation in lockstep.
template <typename K, typename Comp = Less>
void run_soa_merge_segment(const SoaMergeSegment<K>& seg, Comp comp = {}) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < seg.a_n && j < seg.b_n) {
    if (comp(seg.b_key[j], seg.a_key[i])) {
      seg.out_key[k] = seg.b_key[j];
      seg.out_perm[k++] = seg.b_perm[j++];
    } else {
      seg.out_key[k] = seg.a_key[i];
      seg.out_perm[k++] = seg.a_perm[i++];
    }
  }
  for (; i < seg.a_n; ++i, ++k) {
    seg.out_key[k] = seg.a_key[i];
    seg.out_perm[k] = seg.a_perm[i];
  }
  for (; j < seg.b_n; ++j, ++k) {
    seg.out_key[k] = seg.b_key[j];
    seg.out_perm[k] = seg.b_perm[j];
  }
}

// Cuts one key+permutation merge into `pieces` independent segments via
// co_rank on the keys and appends them to `segs`.
template <typename K, typename Comp = Less>
void append_soa_merge_segments(const K* a_key, const std::uint32_t* a_perm,
                               std::size_t a_n, const K* b_key,
                               const std::uint32_t* b_perm, std::size_t b_n,
                               K* out_key, std::uint32_t* out_perm, Comp comp,
                               std::size_t pieces,
                               std::vector<SoaMergeSegment<K>>& segs) {
  const std::size_t n = a_n + b_n;
  if (n == 0) return;
  pieces = std::max<std::size_t>(1, pieces);
  if (n / pieces < kMinMergePiece)
    pieces = std::max<std::size_t>(1, n / kMinMergePiece);
  const std::span<const K> a(a_key, a_n);
  const std::span<const K> b(b_key, b_n);
  std::size_t prev_k = 0;
  std::size_t prev_i = 0;
  for (std::size_t p = 1; p <= pieces; ++p) {
    const std::size_t k = n * p / pieces;
    const std::size_t i = (p == pieces) ? a_n : co_rank(k, a, b, comp);
    const std::size_t j0 = prev_k - prev_i;
    const std::size_t j1 = k - i;
    segs.push_back(SoaMergeSegment<K>{a_key + prev_i, b_key + j0,
                                      a_perm + prev_i, b_perm + j0,
                                      out_key + prev_k, out_perm + prev_k,
                                      i - prev_i, j1 - j0});
    prev_k = k;
    prev_i = i;
  }
}

struct SoaMergeResult {
  BalancedMergeStats stats;
  // True when the merged result ended up in the scratch buffers (odd number
  // of levels). There is deliberately no copy-back: the caller reads the
  // result from whichever pair of buffers holds it.
  bool in_scratch = false;
};

// Fig. 2 balanced merge over SoA runs: `keys`/`perm` hold R sorted runs at
// [bounds[r], bounds[r+1]); `key_scratch`/`perm_scratch` are resized to
// match and serve as the ping-pong buffers. On return the fully merged
// result lives in (keys, perm) or in (key_scratch, perm_scratch) per
// `in_scratch`. `perm` is typically identity-initialized by the caller; this
// routine only permutes it alongside the keys.
template <typename K, typename Comp = Less>
SoaMergeResult balanced_merge_soa(std::vector<K>& keys,
                                  std::vector<std::uint32_t>& perm,
                                  std::vector<std::size_t> bounds,
                                  std::vector<K>& key_scratch,
                                  std::vector<std::uint32_t>& perm_scratch,
                                  Comp comp = {}, ThreadPool* pool = nullptr) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == keys.size());
  PGXD_CHECK(perm.size() == keys.size());
  SoaMergeResult result;
  if (bounds.size() <= 2) return result;

  key_scratch.resize(keys.size());
  perm_scratch.resize(perm.size());
  const K* const key_home = keys.data();
  K* src_key = keys.data();
  K* dst_key = key_scratch.data();
  std::uint32_t* src_perm = perm.data();
  std::uint32_t* dst_perm = perm_scratch.data();
  const std::size_t total_workers = pool ? pool->workers() + 1 : 1;

  std::vector<SoaMergeSegment<K>> segs;  // reused across levels
  std::vector<std::size_t> next_bounds;
  while (bounds.size() > 2) {
    const std::size_t run_count = bounds.size() - 1;
    next_bounds.clear();
    next_bounds.reserve(run_count / 2 + 2);
    next_bounds.push_back(0);

    segs.clear();
    const std::size_t merges = run_count / 2;
    const std::size_t pieces_per_merge =
        merges > 0 ? std::max<std::size_t>(1, total_workers / merges) : 1;

    for (std::size_t r = 0; r + 1 < run_count; r += 2) {
      const std::size_t lo = bounds[r];
      const std::size_t mid = bounds[r + 1];
      const std::size_t hi = bounds[r + 2];
      append_soa_merge_segments<K, Comp>(
          src_key + lo, src_perm + lo, mid - lo, src_key + mid, src_perm + mid,
          hi - mid, dst_key + lo, dst_perm + lo, comp, pieces_per_merge, segs);
      next_bounds.push_back(hi);
      ++result.stats.merges;
      result.stats.elements_moved += hi - lo;
    }
    if (run_count % 2 == 1) {
      // Odd tail carries over as a copy (empty b side).
      const std::size_t lo = bounds[run_count - 1];
      const std::size_t hi = bounds[run_count];
      segs.push_back(SoaMergeSegment<K>{src_key + lo, src_key + hi,
                                        src_perm + lo, src_perm + hi,
                                        dst_key + lo, dst_perm + lo, hi - lo,
                                        0});
      next_bounds.push_back(hi);
      result.stats.elements_moved += hi - lo;
    }

    if (pool)
      pool->run_all(segs.size(), [&](std::size_t i) {
        run_soa_merge_segment(segs[i], comp);
      });
    else
      for (const auto& seg : segs) run_soa_merge_segment(seg, comp);

    std::swap(src_key, dst_key);
    std::swap(src_perm, dst_perm);
    bounds.swap(next_bounds);
    ++result.stats.levels;
  }

  result.in_scratch = src_key != key_home;
  return result;
}

}  // namespace pgxd::sort
