// Regular sampling and splitter selection — steps (2) and (3) of the
// paper's pipeline.
//
// Each processor draws `count` regular samples from its locally sorted
// data; the master merges all received samples and selects p-1 final
// splitters at regular positions.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"

namespace pgxd::sort {

// Picks `count` regular samples from sorted `data`: sample i sits at
// position (i+1) * n / (count+1), i.e. the interior quantile boundaries.
// If count >= n, returns a copy of the data (every element is a sample).
template <typename T>
std::vector<T> regular_samples(std::span<const T> data, std::size_t count) {
  const std::size_t n = data.size();
  if (count >= n) return std::vector<T>(data.begin(), data.end());
  std::vector<T> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    samples.push_back(data[(i + 1) * n / (count + 1)]);
  return samples;
}

// Selects `parts - 1` splitters at regular positions from the *sorted*
// pool of gathered samples. The splitter for boundary j sits at the
// j/parts quantile of the sample pool. A pool smaller than parts-1 yields
// duplicated splitters (handled downstream by the investigator); an empty
// pool yields default-constructed splitters, which only happens when the
// whole dataset is (close to) empty.
template <typename T, typename Comp = Less>
std::vector<T> select_splitters(std::span<const T> sorted_samples,
                                std::size_t parts,
                                [[maybe_unused]] Comp comp = {}) {
  PGXD_CHECK(parts >= 1);
  PGXD_DCHECK(std::is_sorted(sorted_samples.begin(), sorted_samples.end(), comp));
  std::vector<T> splitters;
  if (parts == 1) return splitters;
  const std::size_t m = sorted_samples.size();
  if (m == 0) return std::vector<T>(parts - 1, T{});
  splitters.reserve(parts - 1);
  for (std::size_t j = 1; j < parts; ++j)
    splitters.push_back(sorted_samples[j * m / parts]);
  return splitters;
}

// Weighted splitter selection for *unequal* shard sizes: sample j from a
// shard of n_i elements drawn as s_i regular samples represents n_i / s_i
// elements. Splitters sit at equal cumulative-weight positions, so shards
// of different sizes (e.g. graph partitions balanced by edges, not
// vertices) still yield balanced destinations.
template <typename T>
struct WeightedSample {
  T key;
  double weight;
};

template <typename T, typename Comp = Less>
std::vector<T> select_splitters_weighted(
    std::span<const WeightedSample<T>> sorted_samples, std::size_t parts,
    [[maybe_unused]] Comp comp = {}) {
  PGXD_CHECK(parts >= 1);
  std::vector<T> splitters;
  if (parts == 1) return splitters;
  if (sorted_samples.empty()) return std::vector<T>(parts - 1, T{});
  PGXD_DCHECK(std::is_sorted(
      sorted_samples.begin(), sorted_samples.end(),
      [&](const WeightedSample<T>& a, const WeightedSample<T>& b) {
        return comp(a.key, b.key);
      }));
  double total = 0;
  for (const auto& s : sorted_samples) total += s.weight;
  splitters.reserve(parts - 1);
  double cum = 0;
  std::size_t i = 0;
  for (std::size_t j = 1; j < parts; ++j) {
    const double target = total * static_cast<double>(j) /
                          static_cast<double>(parts);
    while (i + 1 < sorted_samples.size() &&
           cum + sorted_samples[i].weight < target) {
      cum += sorted_samples[i].weight;
      ++i;
    }
    splitters.push_back(sorted_samples[i].key);
  }
  return splitters;
}

}  // namespace pgxd::sort
