// LSD (least-significant-digit) radix sort for unsigned integer keys —
// the local sort of the partitioned parallel radix baseline (Lee et al.),
// and a comparison point for the comparison-based kernels.
//
// Counting sort per digit, ping-ponging between the input and a scratch
// buffer. Only the digits below `significant_bits` are processed, so the
// distributed baseline can skip the digits its partitioning already fixed.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::sort {

struct RadixSortStats {
  unsigned passes = 0;
  std::uint64_t elements_moved = 0;
};

// Sorts `data` by its low `significant_bits` bits (default: all bits that
// are set anywhere in the input). Stable within equal digits.
template <typename Key>
RadixSortStats radix_sort(std::vector<Key>& data, std::vector<Key>& scratch,
                          unsigned significant_bits = 0,
                          unsigned pass_bits = 8) {
  static_assert(std::is_unsigned_v<Key>, "radix sort needs unsigned keys");
  PGXD_CHECK(pass_bits >= 1 && pass_bits <= 16);
  RadixSortStats stats;
  const std::size_t n = data.size();
  if (n < 2) return stats;

  if (significant_bits == 0) {
    Key all = 0;
    for (const auto& k : data) all |= k;
    significant_bits = all ? static_cast<unsigned>(std::bit_width(all)) : 1;
  }
  PGXD_CHECK(significant_bits <= sizeof(Key) * 8);

  const std::size_t buckets = std::size_t{1} << pass_bits;
  const Key digit_mask = static_cast<Key>(buckets - 1);
  scratch.resize(n);
  std::vector<std::size_t> count(buckets);

  Key* src = data.data();
  Key* dst = scratch.data();
  for (unsigned shift = 0; shift < significant_bits; shift += pass_bits) {
    std::fill(count.begin(), count.end(), 0);
    for (std::size_t i = 0; i < n; ++i)
      ++count[static_cast<std::size_t>((src[i] >> shift) & digit_mask)];
    // Skip a pass whose digit is constant (common in the high digits).
    bool trivial = false;
    for (std::size_t b = 0; b < buckets; ++b) {
      if (count[b] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::size_t sum = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i)
      dst[count[static_cast<std::size_t>((src[i] >> shift) & digit_mask)]++] =
          src[i];
    std::swap(src, dst);
    ++stats.passes;
    stats.elements_moved += n;
  }
  if (src != data.data()) std::copy(src, src + n, data.data());
  return stats;
}

template <typename Key>
RadixSortStats radix_sort(std::vector<Key>& data,
                          unsigned significant_bits = 0,
                          unsigned pass_bits = 8) {
  std::vector<Key> scratch;
  return radix_sort(data, scratch, significant_bits, pass_bits);
}

}  // namespace pgxd::sort
