// The paper's "handler" for balanced merging (Fig. 2).
//
// Input: one contiguous buffer holding R sorted runs (run r occupies
// [bounds[r], bounds[r+1])). Runs are merged pairwise per level — run 1 into
// run 0, run 3 into run 2, ... — so when the runs start equal-sized (one per
// worker thread), every merge at every level joins partners of (almost)
// equal size; and each level's merges execute in parallel, with every merge
// itself split across threads via Merge-Path co-ranking. Levels ping-pong
// between the data buffer and one scratch buffer of equal size.
//
// Each level's work is a flat vector of MergeSegment descriptors (reused
// across levels) dispatched through ThreadPool::run_all's index-based
// overload, so a merge of any size performs O(1) heap allocations.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sort/comparator.hpp"
#include "sort/merge.hpp"

namespace pgxd::sort {

// One merge at one level of the Fig. 2 tree: runs `left` and `right` of the
// previous level combine into one run.
struct MergePair {
  std::size_t left;
  std::size_t right;
};

// The full merge schedule for `runs` initial runs: schedule[l] lists the
// pairs merged at level l. A run with no partner at a level carries over.
// For runs == 8 this reproduces Fig. 2 exactly:
//   level 0: (0,1) (2,3) (4,5) (6,7); level 1: (0,2) (4,6); level 2: (0,4)
// where pair indices are positions in the *previous* level's run list.
inline std::vector<std::vector<MergePair>> merge_schedule(std::size_t runs) {
  std::vector<std::vector<MergePair>> levels;
  std::size_t remaining = runs;
  while (remaining > 1) {
    std::vector<MergePair> level;
    for (std::size_t i = 0; i + 1 < remaining; i += 2)
      level.push_back(MergePair{i, i + 1});
    levels.push_back(std::move(level));
    remaining = remaining / 2 + remaining % 2;
  }
  return levels;
}

// Statistics the cost model and tests consume.
struct BalancedMergeStats {
  std::size_t levels = 0;
  std::size_t merges = 0;
  std::size_t elements_moved = 0;  // total elements written across levels
};

// Merges the runs described by `bounds` (size R+1, bounds[0] == 0,
// bounds[R] == data.size(), non-decreasing) into fully sorted order in
// `data`, using `scratch` (resized to data.size()) as the ping-pong buffer.
// `pool` may be null for sequential execution. Returns per-run statistics.
template <typename T, typename Comp = Less>
BalancedMergeStats balanced_merge(std::vector<T>& data,
                                  std::vector<std::size_t> bounds,
                                  std::vector<T>& scratch, Comp comp = {},
                                  ThreadPool* pool = nullptr) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == data.size());
  BalancedMergeStats stats;
  if (bounds.size() <= 2) return stats;  // zero or one run: already sorted

  scratch.resize(data.size());
  T* src = data.data();
  T* dst = scratch.data();
  const std::size_t total_workers = pool ? pool->workers() + 1 : 1;

  std::vector<MergeSegment<T>> segs;  // reused across levels
  std::vector<std::size_t> next_bounds;
  while (bounds.size() > 2) {
    const std::size_t run_count = bounds.size() - 1;
    next_bounds.clear();
    next_bounds.reserve(run_count / 2 + 2);
    next_bounds.push_back(0);

    segs.clear();
    const std::size_t merges = run_count / 2;
    const std::size_t pieces_per_merge =
        merges > 0 ? std::max<std::size_t>(1, total_workers / merges) : 1;

    for (std::size_t r = 0; r + 1 < run_count; r += 2) {
      const std::size_t lo = bounds[r];
      const std::size_t mid = bounds[r + 1];
      const std::size_t hi = bounds[r + 2];
      append_merge_segments<T, Comp>(
          std::span<const T>(src + lo, mid - lo),
          std::span<const T>(src + mid, hi - mid),
          std::span<T>(dst + lo, hi - lo), comp, pieces_per_merge, segs);
      next_bounds.push_back(hi);
      ++stats.merges;
      stats.elements_moved += hi - lo;
    }
    if (run_count % 2 == 1) {
      // Odd tail: copy through so the ping-pong buffers stay consistent
      // (a merge segment with an empty b side is a straight copy).
      const std::size_t lo = bounds[run_count - 1];
      const std::size_t hi = bounds[run_count];
      segs.push_back(MergeSegment<T>{src + lo, src + hi, dst + lo, hi - lo, 0});
      next_bounds.push_back(hi);
      stats.elements_moved += hi - lo;
    }

    if (pool)
      pool->run_all(segs.size(),
                    [&](std::size_t i) { run_merge_segment(segs[i], comp); });
    else
      for (const auto& seg : segs) run_merge_segment(seg, comp);

    std::swap(src, dst);
    bounds.swap(next_bounds);
    ++stats.levels;
  }

  if (src != data.data()) {
    // Result landed in scratch after an odd number of levels.
    std::copy(src, src + data.size(), data.data());
  }
  return stats;
}

}  // namespace pgxd::sort
