// Quicksort with the standard production hardening — median-of-three pivots,
// insertion sort below a cutoff, recursion on the smaller side only, and a
// heapsort fallback past 2*log2(n) depth so adversarial inputs stay
// O(n log n) — plus two hot-path refinements:
//
//   * a branchless *block partition* (BlockQuicksort-style): comparison
//     results are buffered as offset indices in two small fixed-size blocks
//     and the misplaced pairs are swapped in a tight loop, so the partition
//     carries no data-dependent branch on the comparison outcome (the branch
//     mispredictions of a Hoare loop on random keys are what dominate its
//     runtime);
//   * an *equal-elements fast path*: when the chosen pivot compares equal to
//     the predecessor of the current range (the element just left of it,
//     already in final position), the whole range is known to start at the
//     pivot value, and one left-binding partition pass peels off the entire
//     run of duplicates in O(n) instead of recursing on it — duplicate-heavy
//     inputs (the paper's right-skewed distribution, Table II) sort in
//     O(n log #distinct);
//   * a *vectorized classify step* for the block partition: for raw
//     uint64_t keys under the default ordering, the per-block offset fill
//     runs as SIMD compare + compress-store (sort/simd_partition.hpp),
//     runtime-dispatched (AVX2 / SSE4.2 / scalar) so portable and
//     sanitizer builds are unaffected.
//
// The refinements are individually switchable via QuicksortConfig so the
// bench suite can attribute their wins. This is the per-thread local sort of
// the paper's step (1).
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "common/assert.hpp"
#include "sort/comparator.hpp"
#include "sort/simd_partition.hpp"

namespace pgxd::sort {

inline constexpr std::size_t kInsertionCutoff = 24;

// Elements classified per partition block; offsets must fit in uint8_t.
inline constexpr std::size_t kPartitionBlock = 64;

struct QuicksortConfig {
  // Branchless buffered cmp/swap partition; false = scalar Hoare-style loop.
  bool block_partition = true;
  // Peel pivot-equal runs in one pass (duplicate-heavy inputs).
  bool equal_fast_path = true;
  // Vectorize the block classify loops (sort/simd_partition.hpp) when the
  // host supports it and the keys are raw uint64_t under the default
  // ordering; false forces the scalar loops (attribution benches, exotic
  // hosts). Only meaningful with block_partition.
  bool simd_partition = true;
};

// Straight insertion sort; the base case for quicksort.
template <typename T, typename Comp = Less>
void insertion_sort(std::span<T> data, Comp comp = {}) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    T value = std::move(data[i]);
    std::size_t j = i;
    while (j > 0 && comp(value, data[j - 1])) {
      data[j] = std::move(data[j - 1]);
      --j;
    }
    data[j] = std::move(value);
  }
}

namespace detail {

// Sorts {a, b, c} in place and leaves the median in b.
template <typename T, typename Comp>
void median_of_three(T& a, T& b, T& c, Comp comp) {
  if (comp(b, a)) std::swap(a, b);
  if (comp(c, b)) {
    std::swap(b, c);
    if (comp(b, a)) std::swap(a, b);
  }
}

// Pivot selection shared by both partition kernels: sorts data[mid], data[0],
// data[n-1] so the median lands at data[0] (the pivot slot), with
// data[mid] <= pivot <= data[n-1] serving as scan sentinels.
template <typename T, typename Comp>
void pivot_to_front(std::span<T> data, Comp comp) {
  const std::size_t n = data.size();
  median_of_three(data[n / 2], data[0], data[n - 1], comp);
}

// Scalar partition around the pivot at data[0]: on return the pivot sits at
// the returned index, everything left of it is < pivot and everything right
// of it is >= pivot. The pivot is excluded from both sides, so recursion
// always makes progress.
template <typename T, typename Comp>
std::size_t partition_right(std::span<T> data, Comp comp) {
  const std::size_t n = data.size();
  T pivot = std::move(data[0]);
  std::size_t first = 0;
  std::size_t last = n;
  // data[n-1] >= pivot (pivot_to_front), so this scan cannot run off the end.
  while (comp(data[++first], pivot)) {
  }
  // If no element < pivot was skipped, the right scan has no sentinel on its
  // left and must be bounds-checked.
  if (first - 1 == 0) {
    while (first < last && !comp(data[--last], pivot)) {
    }
  } else {
    while (!comp(data[--last], pivot)) {
    }
  }
  while (first < last) {
    std::swap(data[first], data[last]);
    while (comp(data[++first], pivot)) {
    }
    while (!comp(data[--last], pivot)) {
    }
  }
  const std::size_t pivot_pos = first - 1;
  if (pivot_pos != 0) data[0] = std::move(data[pivot_pos]);
  data[pivot_pos] = std::move(pivot);
  return pivot_pos;
}

// Branchless block partition around the pivot at data[0] (BlockQuicksort /
// pdqsort technique). Same contract as partition_right. Each block pass
// writes candidate offsets unconditionally and advances the count by the
// comparison result, so the comparison never feeds a branch; the swap pass
// then pairs misplaced elements from both ends.
template <typename T, typename Comp>
std::size_t partition_right_block(std::span<T> data, Comp comp,
                                  [[maybe_unused]] simd::PartitionIsa isa) {
  const std::size_t n = data.size();
  const T pivot = data[0];

  std::uint8_t offs_l[kPartitionBlock];
  std::uint8_t offs_r[kPartitionBlock];
  // Partition region: [l, r). Invariant: [1, l) < pivot, [r, n) >= pivot.
  // A block with pending offsets ([l, l+kPartitionBlock) when nl > 0,
  // [r-kPartitionBlock, r) when nr > 0) is classified but not yet swapped.
  std::size_t l = 1;
  std::size_t r = n;
  std::size_t nl = 0, nr = 0;  // pending offsets per side
  std::size_t sl = 0, sr = 0;  // consumed prefix of each offset buffer

  // Classify one left-side block starting at l: ascending offsets of
  // elements >= pivot (must move right). SIMD compare + compress-store when
  // the kernels apply, the scalar unconditional-write loop otherwise.
  const auto fill_left = [&](std::size_t count) {
    sl = 0;
#if PGXD_SIMD_PARTITION_X86
    if constexpr (simd::kSimdPartitionKeys<T, Comp>) {
      if (isa != simd::PartitionIsa::kScalar) {
        nl = simd::classify_ge(isa, data.data() + l, count, pivot, offs_l);
        return;
      }
    }
#endif
    for (std::size_t i = 0; i < count; ++i) {
      offs_l[nl] = static_cast<std::uint8_t>(i);
      nl += !comp(data[l + i], pivot);
    }
  };
  // Classify one right-side block ending at r (scanned leftwards):
  // ascending offsets i with data[r - 1 - i] < pivot (must move left).
  const auto fill_right = [&](std::size_t count) {
    sr = 0;
#if PGXD_SIMD_PARTITION_X86
    if constexpr (simd::kSimdPartitionKeys<T, Comp>) {
      if (isa != simd::PartitionIsa::kScalar) {
        nr = simd::classify_lt_rev(isa, data.data() + r, count, pivot,
                                   offs_r);
        return;
      }
    }
#endif
    for (std::size_t i = 0; i < count; ++i) {
      offs_r[nr] = static_cast<std::uint8_t>(i);
      nr += comp(data[r - 1 - i], pivot);
    }
  };

  const auto swap_pending = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      std::swap(data[l + offs_l[sl + i]], data[r - 1 - offs_r[sr + i]]);
    nl -= count;
    nr -= count;
    sl += count;
    sr += count;
  };

  while (r - l > 2 * kPartitionBlock) {
    if (nl == 0) fill_left(kPartitionBlock);
    if (nr == 0) fill_right(kPartitionBlock);
    swap_pending(std::min(nl, nr));
    if (nl == 0) l += kPartitionBlock;
    if (nr == 0) r -= kPartitionBlock;
  }

  // Final (possibly short) blocks. At most one side still has pending
  // offsets here (swap_pending zeroes the smaller side every round).
  PGXD_DCHECK(nl == 0 || nr == 0);
  const std::size_t unknown = (r - l) - ((nl | nr) ? kPartitionBlock : 0);
  std::size_t lsz = 0, rsz = 0;
  if (nl > 0) {
    lsz = kPartitionBlock;
    rsz = unknown;
  } else if (nr > 0) {
    lsz = unknown;
    rsz = kPartitionBlock;
  } else {
    lsz = unknown / 2;
    rsz = unknown - lsz;
  }
  if (nl == 0 && lsz > 0) fill_left(lsz);
  if (nr == 0 && rsz > 0) fill_right(rsz);
  swap_pending(std::min(nl, nr));
  // A fully-fixed final block joins its side's finished zone.
  if (nl == 0) l += lsz;
  if (nr == 0) r -= rsz;

  // Stragglers on one side: fold them into the boundary. Offsets are
  // processed from the highest down (left side) / lowest position up (right
  // side), so each swap partner is either a correctly-placed element or the
  // straggler itself (a harmless self-swap).
  std::size_t cut;
  if (nl > 0) {
    while (nl > 0) {
      --nl;
      std::swap(data[l + offs_l[sl + nl]], data[--r]);
    }
    cut = r;
  } else if (nr > 0) {
    while (nr > 0) {
      --nr;
      std::swap(data[r - 1 - offs_r[sr + nr]], data[l]);
      ++l;
    }
    cut = l;
  } else {
    PGXD_DCHECK(l == r);
    cut = l;
  }

  // Place the pivot at the boundary; exclude it from both sides.
  const std::size_t pivot_pos = cut - 1;
  if (pivot_pos != 0) data[0] = std::move(data[pivot_pos]);
  data[pivot_pos] = pivot;
  return pivot_pos;
}

// Left-binding partition around the pivot at data[0]: elements *equal* to
// the pivot gather on the left, elements greater on the right; returns the
// pivot's final index q, with [0, q] all == pivot. Precondition (enforced by
// the caller): the pivot is the minimum of the range, so "not greater" means
// "equal". This is the duplicate fast path — the whole equal run is done in
// one pass and never recursed into.
template <typename T, typename Comp>
std::size_t partition_left(std::span<T> data, Comp comp) {
  const std::size_t n = data.size();
  T pivot = std::move(data[0]);
  std::size_t first = 0;
  std::size_t last = n;
  // Scan from the right for an element <= pivot. Slot 0 held the pivot, so
  // it acts as an unconditional stop (== pivot) without reading the
  // moved-from value.
  for (;;) {
    --last;
    if (last == 0 || !comp(pivot, data[last])) break;
  }
  if (last == n - 1) {
    // The scan stopped immediately: no element > pivot is known to the
    // right, so the left scan needs bounds checks.
    while (first < last && !comp(pivot, data[++first])) {
    }
  } else {
    // data[last + 1] > pivot acts as the left scan's sentinel.
    while (!comp(pivot, data[++first])) {
    }
  }
  while (first < last) {
    std::swap(data[first], data[last]);
    while (comp(pivot, data[--last])) {
    }
    while (!comp(pivot, data[++first])) {
    }
  }
  const std::size_t pivot_pos = last;
  if (pivot_pos != 0) data[0] = std::move(data[pivot_pos]);
  data[pivot_pos] = std::move(pivot);
  return pivot_pos;
}

// `pred` points at the element immediately left of `data` in the enclosing
// buffer once that element is in its final sorted position (null for the
// leftmost range). Since pred <= everything in data, a pivot equal to pred
// is the range minimum — the trigger for the equal-elements fast path.
template <typename T, typename Comp>
void introsort_loop(std::span<T> data, Comp comp, int depth_budget,
                    const T* pred, const QuicksortConfig& cfg,
                    simd::PartitionIsa isa) {
  while (data.size() > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      std::make_heap(data.begin(), data.end(), comp);
      std::sort_heap(data.begin(), data.end(), comp);
      return;
    }
    pivot_to_front(data, comp);
    if (cfg.equal_fast_path && pred != nullptr && !comp(*pred, data[0])) {
      // Pivot == predecessor == range minimum: peel the duplicate run.
      const std::size_t q = partition_left(data, comp);
      pred = &data[q];
      data = data.subspan(q + 1);
      continue;
    }
    const std::size_t cut = cfg.block_partition
                                ? partition_right_block(data, comp, isa)
                                : partition_right(data, comp);
    // The pivot at `cut` is final: recurse on the smaller side, iterate on
    // the larger, threading the correct predecessor into each.
    std::span<T> left = data.first(cut);
    std::span<T> right = data.subspan(cut + 1);
    if (left.size() < right.size()) {
      introsort_loop(left, comp, depth_budget, pred, cfg, isa);
      pred = &data[cut];
      data = right;
    } else {
      introsort_loop(right, comp, depth_budget, &data[cut], cfg, isa);
      data = left;
    }
  }
  insertion_sort(data, comp);
}

}  // namespace detail

template <typename T, typename Comp = Less>
void quicksort(std::span<T> data, Comp comp = {},
               const QuicksortConfig& cfg = {}) {
  if (data.size() < 2) return;
  // Resolve the partition ISA once per sort: a CPUID-cached probe when the
  // SIMD kernels apply to (T, Comp) and the config wants them, else scalar.
  simd::PartitionIsa isa = simd::PartitionIsa::kScalar;
  if constexpr (simd::kSimdPartitionKeys<T, Comp>) {
    if (cfg.block_partition && cfg.simd_partition) isa = simd::partition_isa();
  }
  const int depth_budget = 2 * static_cast<int>(std::bit_width(data.size()));
  detail::introsort_loop(data, comp, depth_budget,
                         static_cast<const T*>(nullptr), cfg, isa);
}

}  // namespace pgxd::sort
