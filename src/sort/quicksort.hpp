// Quicksort with the standard production hardening: median-of-three pivots,
// insertion sort below a cutoff, recursion on the smaller side only, and a
// heapsort fallback past 2*log2(n) depth so adversarial inputs stay
// O(n log n). This is the per-thread local sort of the paper's step (1).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <functional>
#include <span>
#include <utility>

#include "common/assert.hpp"

namespace pgxd::sort {

inline constexpr std::size_t kInsertionCutoff = 24;

// Straight insertion sort; the base case for quicksort.
template <typename T, typename Comp = std::less<T>>
void insertion_sort(std::span<T> data, Comp comp = {}) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    T value = std::move(data[i]);
    std::size_t j = i;
    while (j > 0 && comp(value, data[j - 1])) {
      data[j] = std::move(data[j - 1]);
      --j;
    }
    data[j] = std::move(value);
  }
}

namespace detail {

// Sorts {a, b, c} in place and leaves the median in b.
template <typename T, typename Comp>
void median_of_three(T& a, T& b, T& c, Comp comp) {
  if (comp(b, a)) std::swap(a, b);
  if (comp(c, b)) {
    std::swap(b, c);
    if (comp(b, a)) std::swap(a, b);
  }
}

// Hoare partition around the median-of-three pivot; returns the cut point.
// Elements equal to the pivot may land on either side (fine for sorting).
template <typename T, typename Comp>
std::size_t partition(std::span<T> data, Comp comp) {
  const std::size_t n = data.size();
  median_of_three(data[0], data[n / 2], data[n - 1], comp);
  const T pivot = data[n / 2];
  std::size_t i = 0, j = n - 1;
  for (;;) {
    while (comp(data[i], pivot)) ++i;
    while (comp(pivot, data[j])) --j;
    if (i >= j) return j + 1;
    std::swap(data[i], data[j]);
    ++i;
    --j;
  }
}

template <typename T, typename Comp>
void introsort_loop(std::span<T> data, Comp comp, int depth_budget) {
  while (data.size() > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      std::make_heap(data.begin(), data.end(), comp);
      std::sort_heap(data.begin(), data.end(), comp);
      return;
    }
    const std::size_t cut = partition(data, comp);
    PGXD_DCHECK(cut > 0 && cut < data.size());
    // Recurse on the smaller half; iterate on the larger.
    if (cut < data.size() - cut) {
      introsort_loop(data.first(cut), comp, depth_budget);
      data = data.subspan(cut);
    } else {
      introsort_loop(data.subspan(cut), comp, depth_budget);
      data = data.first(cut);
    }
  }
  insertion_sort(data, comp);
}

}  // namespace detail

template <typename T, typename Comp = std::less<T>>
void quicksort(std::span<T> data, Comp comp = {}) {
  if (data.size() < 2) return;
  const int depth_budget = 2 * std::bit_width(data.size());
  detail::introsort_loop(data, comp, depth_budget);
}

}  // namespace pgxd::sort
