// Strategy-selectable local sort — the in-node kernel of the paper's step
// (1), promoted from "quicksort only" to a comparison/radix hybrid.
//
// For unsigned integer keys under the default ordering the LSD radix sort
// (sort/radix_sort.hpp) is distribution-based: passes * O(n) instead of
// O(n log n), with the pass count set by the key *width actually in use*
// (an OR-scan of the data), not the declared type width. Whether that beats
// the comparison sort depends on n and that width, so kAdaptive applies a
// measured crossover:
//
//   radix wins  <=>  passes * kRadixNsPerElemPass
//                      < log2(n) * kComparisonNsPerElemLevel
//
// with the constants measured on the reference machine (see
// bench/kernels_local_sort.cpp): the comparison sort costs ~1.6 ns per
// element per log2(n) level; a radix pass (count + scatter) costs ~3.8 ns
// per element at cache-exceeding sizes. Examples at those constants:
// full-width 64-bit keys cross over around n = 2^19; 32-bit-wide keys (4
// passes) win everywhere past the minimum size.
//
// Keys that are signed, non-integral, or sorted by a custom comparator
// always take the comparison path — radix on raw bits would sort a
// different order than the one requested.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <bit>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"
#include "sort/quicksort.hpp"
#include "sort/radix_sort.hpp"

namespace pgxd::sort {

// Local-sort strategy (SortConfig::local_sort).
enum class LocalSortAlgo {
  kComparison,  // introsort with the (SIMD) block partition
  kRadix,       // LSD radix whenever the keys are radix-eligible
  kAdaptive,    // per-shard comparison-vs-radix crossover (the default)
};

struct LocalSortStats {
  bool used_radix = false;
  unsigned radix_passes = 0;      // non-trivial counting passes executed
  unsigned significant_bits = 0;  // OR-scan key width (radix-eligible only)
};

// Measured on the reference machine (bench/kernels_local_sort.cpp):
// comparison sort ns per element per log2(n) level, and radix ns per
// element per 8-bit pass at cache-exceeding sizes.
inline constexpr double kComparisonNsPerElemLevel = 1.6;
inline constexpr double kRadixNsPerElemPass = 3.8;
// Below this the comparison sort's cache residency wins regardless.
inline constexpr std::size_t kRadixMinN = std::size_t{1} << 13;

// Sorts `data` with the selected strategy; `comp` must order ascending for
// the radix path to be eligible (enforced by requiring exactly `Less`).
template <typename Key, typename Comp = Less>
LocalSortStats local_sort(std::vector<Key>& data, LocalSortAlgo algo,
                          Comp comp = {}, const QuicksortConfig& qcfg = {}) {
  LocalSortStats stats;
  const std::size_t n = data.size();
  if constexpr (std::is_unsigned_v<Key> && std::is_same_v<Comp, Less>) {
    if (algo != LocalSortAlgo::kComparison && n >= 2) {
      Key all = 0;
      for (const Key& k : data) all |= k;
      const unsigned bits =
          all != 0 ? static_cast<unsigned>(std::bit_width(all)) : 1;
      const unsigned passes = (bits + 7) / 8;
      const bool radix =
          algo == LocalSortAlgo::kRadix ||
          (n >= kRadixMinN &&
           static_cast<double>(passes) * kRadixNsPerElemPass <
               static_cast<double>(std::bit_width(n - 1)) *
                   kComparisonNsPerElemLevel);
      if (radix) {
        const RadixSortStats rs = radix_sort(data, bits);
        stats.used_radix = true;
        stats.radix_passes = rs.passes;
        stats.significant_bits = bits;
        return stats;
      }
    }
  }
  quicksort(std::span<Key>(data), comp, qcfg);
  return stats;
}

}  // namespace pgxd::sort
