// Default ordering for the sort kernels.
//
// Every kernel in src/sort used to default its comparator to std::less<T>,
// which drags <functional> — a large, std::function-bearing header — into
// every hot-path translation unit for one empty functor. `Less` is the
// transparent replacement: one heterogeneous operator< functor with no
// include cost. Hot-path files must not include <functional>
// (tools/lint_pgxd.py: hot-path-functional-include).
//
// `Less` is also the marker the type-specialized fast paths key on: the
// SIMD block partition (sort/simd_partition.hpp) and the radix local sort
// (sort/local_sort.hpp) only engage when the comparator is exactly `Less`,
// because only then is "operator< on the raw key bits" known to be the
// ordering being requested.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

namespace pgxd::sort {

struct Less {
  using is_transparent = void;
  template <typename A, typename B>
  constexpr bool operator()(const A& a, const B& b) const
      noexcept(noexcept(a < b)) {
    return a < b;
  }
};

}  // namespace pgxd::sort
