// Single-pass parallel k-way merge — the final-merge strategy that replaces
// the upper levels of the Fig. 2 pairwise tree (sort/balanced_merge.hpp /
// sort/soa_merge.hpp).
//
// The pairwise tree moves every element once per level (ceil(log2 R)
// times); at R = 32 runs that is 5 full passes over the partition, and the
// committed bench baseline shows it topping out at ~1/6th of a single
// MergeInto pass. Here every element is moved exactly once:
//
//   1. *Splitter search*: the merged output [0, n) is cut into near-equal
//      per-thread ranges. Each interior boundary is located by
//      multisequence selection (kway_select): a value-pivot binary search
//      across all R runs at once, the classic multiway-partition algorithm
//      (Varman et al.; also __gnu_parallel::multiseq_partition).
//   2. *Per-range loser trees*: each range merges independently with the
//      tournament engine from sort/kway_merge.hpp, paying log2(R)
//      comparisons but only ONE move per element, writing straight into its
//      disjoint slice of the destination.
//
// Boundary cursors deal equal keys to the lower run first — the same tie
// rule as the loser tree and merge_into — so the concatenated ranges are
// *bit-identical* to the stable sequential merge (and to the Fig. 2 tree),
// permutation plane included. tests/parallel_kway_merge_test.cpp holds that
// property under a randomized sweep.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sort/comparator.hpp"
#include "sort/kway_merge.hpp"
#include "sort/merge.hpp"

namespace pgxd::sort {

struct ParallelKwayMergeStats {
  std::size_t runs = 0;
  std::size_t ranges = 1;          // independent loser trees
  std::uint64_t comparisons = 0;   // across all ranges
  std::uint64_t select_rounds = 0; // pivot rounds over all splitter searches
};

// Multisequence selection: finds per-run cursors that split the stable
// k-way merge of the sorted runs over `keys` (run r at
// [bounds[r], bounds[r+1])) at global rank `k` — cursor[r] elements of run r
// belong to the merged prefix of length k, sum(cursor[r] - bounds[r]) == k.
// Equal keys on the boundary are dealt to the lower run first, matching the
// loser tree's tie rule, so the prefix is exactly the first k elements of
// the stable merge.
//
// Value-pivot binary search: keep a candidate window per run, draw the
// pivot from the largest window, rank it exactly across all runs with
// lower/upper_bound, and discard the side of every window the rank rules
// out. Every copy of the true boundary value stays inside the windows, and
// the pivot's window strictly shrinks each round, so the terminating branch
// (count_lt <= k <= count_le) is always reached. O(R log n) per round,
// O(log n) rounds in practice.
template <typename K, typename Comp = Less>
std::vector<std::size_t> kway_select(const K* keys,
                                     std::span<const std::size_t> bounds,
                                     std::size_t k, Comp comp = {},
                                     std::uint64_t* rounds = nullptr) {
  const std::size_t runs = bounds.size() - 1;
  std::vector<std::size_t> cur(runs);
  for (std::size_t r = 0; r < runs; ++r) cur[r] = bounds[r];
  PGXD_CHECK(k <= bounds[runs] - bounds[0]);
  if (k == 0) return cur;
  if (k == bounds[runs] - bounds[0]) {
    for (std::size_t r = 0; r < runs; ++r) cur[r] = bounds[r + 1];
    return cur;
  }

  std::vector<std::size_t> lo(runs), hi(runs), lb(runs), ub(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    lo[r] = bounds[r];
    hi[r] = bounds[r + 1];
  }
  for (;;) {
    // Pivot from the largest window (deterministic: ties -> lowest run).
    std::size_t p = runs;
    std::size_t best = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      const std::size_t width = hi[r] - lo[r];
      if (width > best) {
        best = width;
        p = r;
      }
    }
    // The boundary value always survives inside some window (see above), so
    // the windows cannot all drain before the terminating branch fires.
    PGXD_CHECK_MSG(p < runs, "kway_select: candidate windows drained");
    if (rounds != nullptr) ++*rounds;
    const K& pivot = keys[lo[p] + (hi[p] - lo[p]) / 2];

    // Exact global rank of the pivot value: count_lt strictly-smaller
    // elements, count_le smaller-or-equal.
    std::size_t count_lt = 0, count_le = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      lb[r] = static_cast<std::size_t>(
          std::lower_bound(keys + bounds[r], keys + bounds[r + 1], pivot,
                           comp) -
          keys);
      ub[r] = static_cast<std::size_t>(
          std::upper_bound(keys + bounds[r], keys + bounds[r + 1], pivot,
                           comp) -
          keys);
      count_lt += lb[r] - bounds[r];
      count_le += ub[r] - bounds[r];
    }
    if (k < count_lt) {
      // Boundary < pivot: nothing >= pivot can sit on the boundary.
      for (std::size_t r = 0; r < runs; ++r)
        hi[r] = std::max(lo[r], std::min(hi[r], lb[r]));
    } else if (k > count_le) {
      // Boundary > pivot: nothing <= pivot can sit on the boundary.
      for (std::size_t r = 0; r < runs; ++r)
        lo[r] = std::min(hi[r], std::max(lo[r], ub[r]));
    } else {
      // The pivot value spans the boundary: take every strictly-smaller
      // element, then deal the k - count_lt equal keys to the lowest runs
      // first (the loser tree's tie order).
      std::size_t rem = k - count_lt;
      for (std::size_t r = 0; r < runs; ++r) {
        const std::size_t take = std::min(ub[r] - lb[r], rem);
        cur[r] = lb[r] + take;
        rem -= take;
      }
      PGXD_DCHECK(rem == 0);
      return cur;
    }
  }
}

namespace detail {

// Output ranges for one parallel k-way merge: `want` ranges clamped so no
// range merges fewer than kMinMergePiece elements.
inline std::size_t clamp_kway_ranges(std::size_t want, std::size_t n) {
  want = std::max<std::size_t>(1, want);
  return std::min(want, std::max<std::size_t>(1, n / kMinMergePiece));
}

// Per-range starting cursors (row-major `ranges` x R) for output boundaries
// at n*i/ranges, plus select-round accounting.
template <typename K, typename Comp>
std::vector<std::size_t> kway_range_cursors(
    const K* keys, std::span<const std::size_t> bounds, std::size_t ranges,
    Comp comp, std::uint64_t& rounds) {
  const std::size_t runs = bounds.size() - 1;
  const std::size_t n = bounds[runs] - bounds[0];
  std::vector<std::size_t> cursors(ranges * runs);
  for (std::size_t r = 0; r < runs; ++r) cursors[r] = bounds[r];
  for (std::size_t i = 1; i < ranges; ++i) {
    const auto cut = kway_select(keys, bounds, n * i / ranges, comp, &rounds);
    std::copy(cut.begin(), cut.end(), cursors.begin() + i * runs);
  }
  return cursors;
}

}  // namespace detail

// Single-pass parallel k-way merge of full records: merges the sorted runs
// of `src` described by `bounds` into `dst` (resized to src.size()). With a
// pool, output ranges merge concurrently (caller participates via
// run_all); `ranges` overrides the split count — e.g. a DES caller with no
// real pool can still exercise the splitter search by asking for the
// simulated machine's thread count.
template <typename T, typename Comp = Less>
ParallelKwayMergeStats parallel_kway_merge(const std::vector<T>& src,
                                           const std::vector<std::size_t>& bounds,
                                           std::vector<T>& dst, Comp comp = {},
                                           ThreadPool* pool = nullptr,
                                           std::size_t ranges = 0) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == src.size());
  ParallelKwayMergeStats stats;
  const std::size_t n = src.size();
  const std::size_t runs = bounds.size() - 1;
  stats.runs = runs;
  dst.resize(n);
  if (n == 0) return stats;
  if (runs <= 1) {
    std::copy(src.begin(), src.end(), dst.begin());
    return stats;
  }

  const std::span<const std::size_t> bspan(bounds);
  if (ranges == 0) ranges = pool ? pool->workers() + 1 : 1;
  ranges = detail::clamp_kway_ranges(ranges, n);
  stats.ranges = ranges;
  auto cursors =
      detail::kway_range_cursors(src.data(), bspan, ranges, comp,
                                 stats.select_rounds);

  std::vector<std::uint64_t> comps(ranges, 0);
  auto run_range = [&](std::size_t i) {
    std::span<std::size_t> cur(cursors.data() + i * runs, runs);
    const std::size_t k0 = n * i / ranges;
    const std::size_t k1 = n * (i + 1) / ranges;
    std::size_t out = k0;
    comps[i] = kway_merge_range(src.data(), bspan, cur, k1 - k0, comp,
                                [&](std::size_t pos) { dst[out++] = src[pos]; });
  };
  if (pool != nullptr && ranges > 1)
    pool->run_all(ranges, run_range);
  else
    for (std::size_t i = 0; i < ranges; ++i) run_range(i);
  stats.comparisons = std::accumulate(comps.begin(), comps.end(),
                                      std::uint64_t{0});
  return stats;
}

// SoA variant for the distributed final merge: bare keys plus the compact
// u32 permutation move through ONE pass (sizeof(Key) + 4 bytes per element,
// once — versus once per level in balanced_merge_soa). The merged result
// always lands in (key_out, perm_out); there is no ping-pong and no
// copy-back, the caller reads the output planes directly (the same
// no-staging contract as SoaMergeResult with in_scratch == true).
template <typename K, typename Comp = Less>
ParallelKwayMergeStats parallel_kway_merge_soa(
    const std::vector<K>& keys, const std::vector<std::uint32_t>& perm,
    const std::vector<std::size_t>& bounds, std::vector<K>& key_out,
    std::vector<std::uint32_t>& perm_out, Comp comp = {},
    ThreadPool* pool = nullptr, std::size_t ranges = 0) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == keys.size());
  PGXD_CHECK(perm.size() == keys.size());
  ParallelKwayMergeStats stats;
  const std::size_t n = keys.size();
  const std::size_t runs = bounds.size() - 1;
  stats.runs = runs;
  key_out.resize(n);
  perm_out.resize(n);
  if (n == 0) return stats;
  if (runs <= 1) {
    std::copy(keys.begin(), keys.end(), key_out.begin());
    std::copy(perm.begin(), perm.end(), perm_out.begin());
    return stats;
  }

  const std::span<const std::size_t> bspan(bounds);
  if (ranges == 0) ranges = pool ? pool->workers() + 1 : 1;
  ranges = detail::clamp_kway_ranges(ranges, n);
  stats.ranges = ranges;
  auto cursors =
      detail::kway_range_cursors(keys.data(), bspan, ranges, comp,
                                 stats.select_rounds);

  std::vector<std::uint64_t> comps(ranges, 0);
  auto run_range = [&](std::size_t i) {
    std::span<std::size_t> cur(cursors.data() + i * runs, runs);
    const std::size_t k0 = n * i / ranges;
    const std::size_t k1 = n * (i + 1) / ranges;
    std::size_t out = k0;
    comps[i] = kway_merge_range(keys.data(), bspan, cur, k1 - k0, comp,
                                [&](std::size_t pos) {
                                  key_out[out] = keys[pos];
                                  perm_out[out] = perm[pos];
                                  ++out;
                                });
  };
  if (pool != nullptr && ranges > 1)
    pool->run_all(ranges, run_range);
  else
    for (std::size_t i = 0; i < ranges; ++i) run_range(i);
  stats.comparisons = std::accumulate(comps.begin(), comps.end(),
                                      std::uint64_t{0});
  return stats;
}

}  // namespace pgxd::sort
