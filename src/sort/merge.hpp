// Merge kernels: stable two-way merge, Merge-Path co-ranking, and a
// parallel merge that splits the output range across a thread pool.
//
// Parallel work is described by plain MergeSegment records (pointer + length
// pairs) instead of heap-allocated closures: one level of the Fig. 2 merge
// tree appends its segments into a caller-owned vector that is reused across
// levels, so scheduling a merge costs zero allocations in the steady state.
//
// Stability convention everywhere: on ties, elements of the first ("a")
// input precede elements of the second ("b") input.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sort/comparator.hpp"

namespace pgxd::sort {

// Stable sequential merge of sorted ranges a and b into out
// (out.size() == a.size() + b.size(); out must not alias a or b).
template <typename T, typename Comp = Less>
void merge_into(std::span<const T> a, std::span<const T> b, std::span<T> out,
                Comp comp = {}) {
  PGXD_CHECK(out.size() == a.size() + b.size());
  std::size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size())
    out[k++] = comp(b[j], a[i]) ? b[j++] : a[i++];
  while (i < a.size()) out[k++] = a[i++];
  while (j < b.size()) out[k++] = b[j++];
}

// Merge-Path co-rank: returns i (and implicitly j = k - i) such that the
// stable merge of a and b has exactly a[0..i) and b[0..j) in its first k
// output slots. O(log(min(|a|, |b|, k))).
template <typename T, typename Comp = Less>
std::size_t co_rank(std::size_t k, std::span<const T> a, std::span<const T> b,
                    Comp comp = {}) {
  PGXD_CHECK(k <= a.size() + b.size());
  std::size_t lo = k > b.size() ? k - b.size() : 0;
  std::size_t hi = k < a.size() ? k : a.size();
  for (;;) {
    const std::size_t i = lo + (hi - lo) / 2;
    const std::size_t j = k - i;
    if (i < a.size() && j > 0 && !comp(b[j - 1], a[i])) {
      // b[j-1] >= a[i]: a[i] belongs in the prefix, take more from a.
      lo = i + 1;
    } else if (i > 0 && j < b.size() && comp(b[j], a[i - 1])) {
      // b[j] < a[i-1]: we took too much from a.
      hi = i - 1;
    } else {
      return i;
    }
  }
}

// Minimum output elements per parallel piece; below this, splitting costs
// more than it saves.
inline constexpr std::size_t kMinMergePiece = 4096;

// One independent piece of a stable two-way merge: a POD descriptor, cheap
// to store in a reusable vector and to hand to a pool worker by index.
template <typename T>
struct MergeSegment {
  const T* a = nullptr;
  const T* b = nullptr;
  T* out = nullptr;
  std::size_t a_n = 0;
  std::size_t b_n = 0;
};

template <typename T, typename Comp = Less>
void run_merge_segment(const MergeSegment<T>& seg, Comp comp = {}) {
  merge_into(std::span<const T>(seg.a, seg.a_n),
             std::span<const T>(seg.b, seg.b_n),
             std::span<T>(seg.out, seg.a_n + seg.b_n), comp);
}

// Cuts the stable merge of a and b into `pieces` independent segments (via
// co_rank) and appends them to `segs` without running them. Used by the
// balanced merge handler to build one flat segment list per merge level, so
// nothing ever blocks inside a pool worker.
template <typename T, typename Comp = Less>
void append_merge_segments(std::span<const T> a, std::span<const T> b,
                           std::span<T> out, Comp comp, std::size_t pieces,
                           std::vector<MergeSegment<T>>& segs) {
  PGXD_CHECK(out.size() == a.size() + b.size());
  const std::size_t n = out.size();
  if (n == 0) return;
  pieces = std::max<std::size_t>(1, pieces);
  if (n / pieces < kMinMergePiece) pieces = std::max<std::size_t>(1, n / kMinMergePiece);
  std::size_t prev_k = 0;
  std::size_t prev_i = 0;
  for (std::size_t p = 1; p <= pieces; ++p) {
    const std::size_t k = n * p / pieces;
    const std::size_t i = (p == pieces) ? a.size() : co_rank(k, a, b, comp);
    const std::size_t j0 = prev_k - prev_i;
    const std::size_t j1 = k - i;
    segs.push_back(MergeSegment<T>{a.data() + prev_i, b.data() + j0,
                                   out.data() + prev_k, i - prev_i, j1 - j0});
    prev_k = k;
    prev_i = i;
  }
}

// Stable parallel merge: the output is cut into `pieces` equal segments; the
// (i, j) split for each cut point comes from co_rank, so segments merge
// independently. Falls back to the sequential kernel for small inputs or a
// null pool. Must be called from outside the pool's workers.
template <typename T, typename Comp = Less>
void parallel_merge(std::span<const T> a, std::span<const T> b, std::span<T> out,
                    Comp comp = {}, ThreadPool* pool = nullptr,
                    std::size_t pieces = 0) {
  if (pieces == 0) pieces = pool ? pool->workers() + 1 : 1;
  if (pieces <= 1 || pool == nullptr || out.size() < 2 * kMinMergePiece) {
    PGXD_CHECK(out.size() == a.size() + b.size());
    merge_into(a, b, out, comp);
    return;
  }
  std::vector<MergeSegment<T>> segs;
  segs.reserve(pieces);
  append_merge_segments(a, b, out, comp, pieces, segs);
  pool->run_all(segs.size(),
                [&](std::size_t i) { run_merge_segment(segs[i], comp); });
}

}  // namespace pgxd::sort
