// Vectorized block classification for the BlockQuicksort partition
// (sort/quicksort.hpp).
//
// The branchless block partition spends its time filling two small offset
// buffers: "which of these 64 contiguous elements are on the wrong side of
// the pivot". That classify loop is a pure compare + compress-store pattern:
//
//   AVX2:   load 4 u64 lanes -> biased signed compare against the pivot ->
//           movemask -> a 16-entry lookup table maps the mask to its set-bit
//           positions packed into one u32 -> one 4-byte store + popcount
//           advance. No per-element branches, no per-element stores.
//   SSE4.2: the same with 2 lanes (_mm_cmpgt_epi64) and a 4-entry table.
//
// u64 has no unsigned vector compare, so both kernels flip the sign bit of
// each operand (x ^ 2^63) and compare signed — the standard order-preserving
// bias.
//
// Dispatch is at runtime via __builtin_cpu_supports, probed once: portable
// and sanitizer builds (or unsupported hosts) take the scalar loop in
// quicksort.hpp, and QuicksortConfig::simd_partition can force it off for
// attribution benches. The kernels only engage for uint64_t keys under the
// default `Less` ordering (sort/comparator.hpp) — any other type or
// comparator means "operator< on the raw bits" is not the requested order.
//
// All vector loads read whole lanes inside [data, data + count), never past
// the block, so ASan sees nothing the scalar loop wouldn't do.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "sort/comparator.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PGXD_SIMD_PARTITION_X86 1
#include <immintrin.h>
#else
#define PGXD_SIMD_PARTITION_X86 0
#endif

namespace pgxd::sort::simd {

enum class PartitionIsa { kScalar, kSse42, kAvx2 };

// True when the SIMD classify kernels apply: raw uint64_t keys ordered by
// the default transparent comparator.
template <typename T, typename Comp>
inline constexpr bool kSimdPartitionKeys =
    std::is_same_v<T, std::uint64_t> && std::is_same_v<Comp, Less>;

inline PartitionIsa detect_partition_isa() {
#if PGXD_SIMD_PARTITION_X86
  if (__builtin_cpu_supports("avx2")) return PartitionIsa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return PartitionIsa::kSse42;
#endif
  return PartitionIsa::kScalar;
}

// CPUID probe cached for the process; never changes at runtime.
inline PartitionIsa partition_isa() {
  static const PartitionIsa isa = detect_partition_isa();
  return isa;
}

#if PGXD_SIMD_PARTITION_X86

namespace detail {

// Compress-store tables: entry [mask] packs the positions of mask's set
// bits into consecutive bytes of one little-endian word (unused high bytes
// are zero; they are stored but sit past the valid prefix and are
// overwritten or never read). `fwd` emits set-bit lanes low-to-high (for
// ascending loads); `rev` emits 3-lane / 1-lane complements high-to-low
// (for descending loads, where lane j holds offset base + lanes-1-j).
struct Pack4 {
  std::uint32_t fwd[16];
  std::uint32_t rev[16];
};

constexpr Pack4 make_pack4() {
  Pack4 p{};
  for (unsigned m = 0; m < 16; ++m) {
    std::uint32_t f = 0;
    unsigned nf = 0;
    for (unsigned lane = 0; lane < 4; ++lane)
      if ((m >> lane) & 1u) f |= lane << (8 * nf++);
    std::uint32_t r = 0;
    unsigned nr = 0;
    for (unsigned lane = 4; lane-- > 0;)
      if ((m >> lane) & 1u) r |= (3u - lane) << (8 * nr++);
    p.fwd[m] = f;
    p.rev[m] = r;
  }
  return p;
}

inline constexpr Pack4 kPack4 = make_pack4();

struct Pack2 {
  std::uint16_t fwd[4];
  std::uint16_t rev[4];
};

constexpr Pack2 make_pack2() {
  Pack2 p{};
  for (unsigned m = 0; m < 4; ++m) {
    std::uint16_t f = 0;
    unsigned nf = 0;
    for (unsigned lane = 0; lane < 2; ++lane)
      if ((m >> lane) & 1u)
        f = static_cast<std::uint16_t>(f | lane << (8 * nf++));
    std::uint16_t r = 0;
    unsigned nr = 0;
    for (unsigned lane = 2; lane-- > 0;)
      if ((m >> lane) & 1u)
        r = static_cast<std::uint16_t>(r | (1u - lane) << (8 * nr++));
    p.fwd[m] = f;
    p.rev[m] = r;
  }
  return p;
}

inline constexpr Pack2 kPack2 = make_pack2();

}  // namespace detail

// Fills `offs` with the ascending offsets i in [0, count) where
// data[i] >= pivot (the left block: elements that must move right).
// Returns the offset count. count <= 64 so every offset fits uint8_t.
__attribute__((target("avx2"))) inline std::size_t classify_ge_avx2(
    const std::uint64_t* data, std::size_t count, std::uint64_t pivot,
    std::uint8_t* offs) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i piv = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(pivot)), bias);
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), bias);
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(piv, v))));
    const unsigned ge = ~lt & 0xFu;
    const std::uint32_t w =
        detail::kPack4.fwd[ge] + static_cast<std::uint32_t>(i) * 0x01010101u;
    std::memcpy(offs + n, &w, sizeof(w));
    n += static_cast<std::size_t>(__builtin_popcount(ge));
  }
  for (; i < count; ++i) {
    offs[n] = static_cast<std::uint8_t>(i);
    n += static_cast<std::size_t>(data[i] >= pivot);
  }
  return n;
}

// Fills `offs` with the ascending offsets i in [0, count) where
// end[-1 - i] < pivot (the right block, scanned leftwards: elements that
// must move left). Returns the offset count.
__attribute__((target("avx2"))) inline std::size_t classify_lt_rev_avx2(
    const std::uint64_t* end, std::size_t count, std::uint64_t pivot,
    std::uint8_t* offs) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i piv = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(pivot)), bias);
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Lane j holds end[-4 - i + j], i.e. offset i + 3 - j: the rev table
    // emits lanes high-to-low so offsets come out ascending.
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(end - i - 4)),
        bias);
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(piv, v))));
    const std::uint32_t w =
        detail::kPack4.rev[lt] + static_cast<std::uint32_t>(i) * 0x01010101u;
    std::memcpy(offs + n, &w, sizeof(w));
    n += static_cast<std::size_t>(__builtin_popcount(lt));
  }
  for (; i < count; ++i) {
    offs[n] = static_cast<std::uint8_t>(i);
    n += static_cast<std::size_t>(end[-1 - static_cast<std::ptrdiff_t>(i)] <
                                  pivot);
  }
  return n;
}

__attribute__((target("sse4.2"))) inline std::size_t classify_ge_sse42(
    const std::uint64_t* data, std::size_t count, std::uint64_t pivot,
    std::uint8_t* offs) {
  const __m128i bias =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m128i piv =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(pivot)), bias);
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i)), bias);
    const unsigned lt = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(piv, v))));
    const unsigned ge = ~lt & 0x3u;
    const std::uint16_t w = static_cast<std::uint16_t>(
        detail::kPack2.fwd[ge] + static_cast<std::uint32_t>(i) * 0x0101u);
    std::memcpy(offs + n, &w, sizeof(w));
    n += static_cast<std::size_t>(__builtin_popcount(ge));
  }
  for (; i < count; ++i) {
    offs[n] = static_cast<std::uint8_t>(i);
    n += static_cast<std::size_t>(data[i] >= pivot);
  }
  return n;
}

__attribute__((target("sse4.2"))) inline std::size_t classify_lt_rev_sse42(
    const std::uint64_t* end, std::size_t count, std::uint64_t pivot,
    std::uint8_t* offs) {
  const __m128i bias =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m128i piv =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(pivot)), bias);
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(end - i - 2)), bias);
    const unsigned lt = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(piv, v))));
    const std::uint16_t w = static_cast<std::uint16_t>(
        detail::kPack2.rev[lt] + static_cast<std::uint32_t>(i) * 0x0101u);
    std::memcpy(offs + n, &w, sizeof(w));
    n += static_cast<std::size_t>(__builtin_popcount(lt));
  }
  for (; i < count; ++i) {
    offs[n] = static_cast<std::uint8_t>(i);
    n += static_cast<std::size_t>(end[-1 - static_cast<std::ptrdiff_t>(i)] <
                                  pivot);
  }
  return n;
}

// ISA-dispatched entry points (isa must not be kScalar).
inline std::size_t classify_ge(PartitionIsa isa, const std::uint64_t* data,
                               std::size_t count, std::uint64_t pivot,
                               std::uint8_t* offs) {
  return isa == PartitionIsa::kAvx2
             ? classify_ge_avx2(data, count, pivot, offs)
             : classify_ge_sse42(data, count, pivot, offs);
}

inline std::size_t classify_lt_rev(PartitionIsa isa, const std::uint64_t* end,
                                   std::size_t count, std::uint64_t pivot,
                                   std::uint8_t* offs) {
  return isa == PartitionIsa::kAvx2
             ? classify_lt_rev_avx2(end, count, pivot, offs)
             : classify_lt_rev_sse42(end, count, pivot, offs);
}

#endif  // PGXD_SIMD_PARTITION_X86

}  // namespace pgxd::sort::simd
