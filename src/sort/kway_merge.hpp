// Loser-tree k-way merge — the classical alternative to the paper's Fig. 2
// balanced merge tree. One comparison per element per tree level (log2 k),
// and every element is moved exactly once.
//
// The tournament engine is exposed as a *range* primitive
// (`kway_merge_range`): it starts from arbitrary per-run cursors and emits
// exactly `count` elements in merged order. `kway_merge` runs one engine
// over the whole buffer (the sequential merge-strategy ablation);
// sort/parallel_kway_merge.hpp cuts the output into per-thread ranges via
// multisequence selection and runs one engine per range — the single-pass
// parallel final merge.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"

namespace pgxd::sort {

struct KwayMergeStats {
  std::size_t runs = 0;
  std::uint64_t comparisons = 0;
};

// Tournament engine: merges the next `count` elements of the k-way merge of
// the sorted runs over `keys` described by `bounds` (size R+1; run r is
// [bounds[r], bounds[r+1])), starting from `cursor` (size R, with
// bounds[r] <= cursor[r] <= bounds[r+1]; advanced in place). Emits each
// element's *source position* in ascending merged order: emit(pos) with
// keys[pos] the next element. Returns the comparison count.
//
// Stability: ties resolve to the lower run index — the same convention as
// merge_into / the Fig. 2 tree, and the one kway_select's boundary cursors
// assume, so disjoint ranges of one merge concatenate into exactly the
// stable merge of the whole input.
template <typename K, typename Comp, typename Emit>
std::uint64_t kway_merge_range(const K* keys,
                               std::span<const std::size_t> bounds,
                               std::span<std::size_t> cursor,
                               std::size_t count, Comp comp, Emit&& emit) {
  const std::size_t runs = bounds.size() - 1;
  PGXD_DCHECK(cursor.size() == runs);
  std::uint64_t comparisons = 0;
  if (count == 0) return comparisons;
  if (runs == 1) {
    for (std::size_t i = 0; i < count; ++i) emit(cursor[0]++);
    PGXD_DCHECK(cursor[0] <= bounds[1]);
    return comparisons;
  }

  // Tournament tree over k leaves (padded to a power of two with exhausted
  // sentinels). losers[i] holds the losing run index at internal node i;
  // the overall winner is tracked separately.
  const std::size_t k = std::bit_ceil(runs);
  auto exhausted = [&](std::size_t r) {
    return r >= runs || cursor[r] >= bounds[r + 1];
  };
  // Comparison with stability: run a beats run b if a's head < b's head, or
  // equal heads with a < b. An exhausted run always loses.
  auto beats = [&](std::size_t a, std::size_t b) {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    ++comparisons;
    if (comp(keys[cursor[a]], keys[cursor[b]])) return true;
    if (comp(keys[cursor[b]], keys[cursor[a]])) return false;
    return a < b;
  };

  // Build: play the tournament bottom-up.
  std::vector<std::size_t> losers(k, k);  // internal nodes, index 1..k-1 used
  std::size_t winner;
  {
    std::vector<std::size_t> level(k);
    for (std::size_t i = 0; i < k; ++i) level[i] = i;
    std::size_t width = k;
    std::size_t node_base = k;
    while (width > 1) {
      width /= 2;
      node_base /= 2;
      for (std::size_t i = 0; i < width; ++i) {
        const std::size_t a = level[2 * i], b = level[2 * i + 1];
        const bool a_wins = beats(a, b);
        losers[node_base + i] = a_wins ? b : a;
        level[i] = a_wins ? a : b;
      }
    }
    winner = level[0];
  }

  for (std::size_t out = 0; out < count; ++out) {
    PGXD_DCHECK(!exhausted(winner));
    emit(cursor[winner]);
    ++cursor[winner];
    // Replay the winner's path to the root.
    std::size_t node = (k + winner) / 2;
    while (node >= 1) {
      if (beats(losers[node], winner)) std::swap(losers[node], winner);
      node /= 2;
    }
  }
  return comparisons;
}

// Merges the sorted runs described by `bounds` (size R+1, bounds[0] == 0,
// bounds[R] == data.size()) into sorted order in `data`, via one pass
// through a loser tree. Stable across runs (ties resolve to the lower run
// index).
template <typename T, typename Comp = Less>
KwayMergeStats kway_merge(std::vector<T>& data,
                          const std::vector<std::size_t>& bounds,
                          std::vector<T>& scratch, Comp comp = {}) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == data.size());
  KwayMergeStats stats;
  const std::size_t runs = bounds.size() - 1;
  stats.runs = runs;
  if (runs <= 1) return stats;

  scratch.resize(data.size());
  std::vector<std::size_t> cursor(bounds.begin(), bounds.end() - 1);
  std::size_t out = 0;
  stats.comparisons = kway_merge_range(
      data.data(), std::span<const std::size_t>(bounds),
      std::span<std::size_t>(cursor), data.size(), comp,
      [&](std::size_t pos) { scratch[out++] = data[pos]; });
  data.swap(scratch);
  return stats;
}

}  // namespace pgxd::sort
