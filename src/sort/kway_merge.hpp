// Sequential k-way merge with a loser tree — the classical alternative to
// the paper's Fig. 2 balanced merge tree, used as the real data path of the
// merge-strategy ablation. One comparison per element per tree level
// (log2 k), but inherently sequential: no intra-merge parallelism.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <bit>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace pgxd::sort {

struct KwayMergeStats {
  std::size_t runs = 0;
  std::uint64_t comparisons = 0;
};

// Merges the sorted runs described by `bounds` (size R+1, bounds[0] == 0,
// bounds[R] == data.size()) into sorted order in `data`, via one pass
// through a loser tree. Stable across runs (ties resolve to the lower run
// index).
template <typename T, typename Comp = std::less<T>>
KwayMergeStats kway_merge(std::vector<T>& data,
                          const std::vector<std::size_t>& bounds,
                          std::vector<T>& scratch, Comp comp = {}) {
  PGXD_CHECK(!bounds.empty());
  PGXD_CHECK(bounds.front() == 0);
  PGXD_CHECK(bounds.back() == data.size());
  KwayMergeStats stats;
  const std::size_t runs = bounds.size() - 1;
  stats.runs = runs;
  if (runs <= 1) return stats;

  scratch.resize(data.size());

  // Tournament tree over k leaves (padded to a power of two with exhausted
  // sentinels). tree_[i] holds the *loser* run index at internal node i;
  // the overall winner is tracked separately.
  const std::size_t k = std::bit_ceil(runs);
  std::vector<std::size_t> cursor(runs);
  for (std::size_t r = 0; r < runs; ++r) cursor[r] = bounds[r];

  auto exhausted = [&](std::size_t r) {
    return r >= runs || cursor[r] >= bounds[r + 1];
  };
  // Comparison with stability: run a beats run b if a's head < b's head, or
  // equal heads with a < b. An exhausted run always loses.
  auto beats = [&](std::size_t a, std::size_t b) {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    ++stats.comparisons;
    if (comp(data[cursor[a]], data[cursor[b]])) return true;
    if (comp(data[cursor[b]], data[cursor[a]])) return false;
    return a < b;
  };

  // Build: play the tournament bottom-up.
  std::vector<std::size_t> losers(k, k);  // internal nodes, index 1..k-1 used
  std::size_t winner;
  {
    std::vector<std::size_t> level(k);
    for (std::size_t i = 0; i < k; ++i) level[i] = i;
    std::size_t width = k;
    std::size_t node_base = k;
    while (width > 1) {
      width /= 2;
      node_base /= 2;
      for (std::size_t i = 0; i < width; ++i) {
        const std::size_t a = level[2 * i], b = level[2 * i + 1];
        const bool a_wins = beats(a, b);
        losers[node_base + i] = a_wins ? b : a;
        level[i] = a_wins ? a : b;
      }
    }
    winner = level[0];
  }

  for (std::size_t out = 0; out < data.size(); ++out) {
    PGXD_DCHECK(!exhausted(winner));
    scratch[out] = data[cursor[winner]];
    ++cursor[winner];
    // Replay the winner's path to the root.
    std::size_t node = (k + winner) / 2;
    while (node >= 1) {
      if (beats(losers[node], winner)) std::swap(losers[node], winner);
      node /= 2;
    }
  }
  data.swap(scratch);
  return stats;
}

}  // namespace pgxd::sort
