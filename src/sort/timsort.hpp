// TimSort (Peters, 2002) — the local sort used by Spark's sortByKey path,
// which the paper uses as its baseline's in-node sort and whose
// "performance optimizations ... are also applied in the proposed sorting
// technique" (Sec. II).
//
// This is a faithful port of the classic implementation: natural-run
// detection with descending-run reversal, binary-insertion extension of
// short runs to minrun, the merge-collapse stack invariants (including the
// 2015 corrected two-deep check), and galloping merges with the adaptive
// min-gallop threshold.
// pgxd-lint: hot-path  (tools/lint_pgxd.py: no std::function, naked new,
// or std::set in this file)
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sort/comparator.hpp"

namespace pgxd::sort {

struct TimSortStats {
  std::size_t runs_found = 0;
  std::size_t merges = 0;
  std::size_t galloped_elements = 0;
};

namespace detail {

template <typename T, typename Comp>
class TimSorter {
 public:
  static constexpr std::size_t kMinMerge = 64;
  static constexpr std::size_t kInitialMinGallop = 7;

  TimSorter(std::span<T> data, Comp comp) : a_(data), comp_(comp) {}

  TimSortStats sort() {
    const std::size_t n = a_.size();
    if (n < 2) return stats_;

    if (n < kMinMerge) {
      // Tiny array: one run, extended by binary insertion.
      const std::size_t run = count_run_and_make_ascending(0, n);
      binary_insertion_sort(0, n, run);
      stats_.runs_found = 1;
      return stats_;
    }

    const std::size_t min_run = compute_min_run(n);
    std::size_t lo = 0;
    std::size_t remaining = n;
    do {
      std::size_t run_len = count_run_and_make_ascending(lo, a_.size());
      ++stats_.runs_found;
      if (run_len < min_run) {
        const std::size_t force = std::min(remaining, min_run);
        binary_insertion_sort(lo, lo + force, run_len);
        run_len = force;
      }
      push_run(lo, run_len);
      merge_collapse();
      lo += run_len;
      remaining -= run_len;
    } while (remaining != 0);

    merge_force_collapse();
    PGXD_CHECK(stack_.size() == 1);
    return stats_;
  }

  // minrun: a power-of-two-friendly run target in [kMinMerge/2, kMinMerge].
  static std::size_t compute_min_run(std::size_t n) {
    std::size_t r = 0;
    while (n >= kMinMerge) {
      r |= n & 1;
      n >>= 1;
    }
    return n + r;
  }

 private:
  struct Run {
    std::size_t base;
    std::size_t len;
  };

  bool lt(const T& x, const T& y) const { return comp_(x, y); }
  bool le(const T& x, const T& y) const { return !comp_(y, x); }

  // Finds the natural run starting at lo; reverses strictly-descending runs
  // (strictness preserves stability). Returns the run length.
  std::size_t count_run_and_make_ascending(std::size_t lo, std::size_t hi) {
    PGXD_DCHECK(lo < hi);
    std::size_t i = lo + 1;
    if (i == hi) return 1;
    if (lt(a_[i], a_[lo])) {
      // Strictly descending.
      while (i + 1 < hi && lt(a_[i + 1], a_[i])) ++i;
      std::reverse(a_.begin() + lo, a_.begin() + i + 1);
    } else {
      // Non-descending.
      while (i + 1 < hi && le(a_[i], a_[i + 1])) ++i;
    }
    return i + 1 - lo;
  }

  // Sorts [lo, hi) given that [lo, lo+start) is already sorted.
  void binary_insertion_sort(std::size_t lo, std::size_t hi, std::size_t start) {
    if (start == 0) start = 1;
    for (std::size_t i = lo + start; i < hi; ++i) {
      T pivot = std::move(a_[i]);
      // Find insertion point: leftmost position where pivot < a_[pos] keeps
      // stability (insert after equals).
      std::size_t left = lo, right = i;
      while (left < right) {
        const std::size_t mid = left + (right - left) / 2;
        if (lt(pivot, a_[mid]))
          right = mid;
        else
          left = mid + 1;
      }
      for (std::size_t j = i; j > left; --j) a_[j] = std::move(a_[j - 1]);
      a_[left] = std::move(pivot);
    }
  }

  void push_run(std::size_t base, std::size_t len) {
    stack_.push_back(Run{base, len});
  }

  // Maintains the TimSort stack invariants (with the corrected check that
  // also inspects the run four-from-top, per the 2015 de Gouw et al. fix):
  //   len[i-2] > len[i-1] + len[i]   and   len[i-1] > len[i]
  void merge_collapse() {
    while (stack_.size() > 1) {
      std::size_t n = stack_.size() - 2;
      const bool violation_a =
          (n >= 1 && stack_[n - 1].len <= stack_[n].len + stack_[n + 1].len) ||
          (n >= 2 && stack_[n - 2].len <= stack_[n - 1].len + stack_[n].len);
      if (violation_a) {
        if (stack_[n - 1].len < stack_[n + 1].len) --n;
        merge_at(n);
      } else if (stack_[n].len <= stack_[n + 1].len) {
        merge_at(n);
      } else {
        break;
      }
    }
  }

  void merge_force_collapse() {
    while (stack_.size() > 1) {
      std::size_t n = stack_.size() - 2;
      if (n >= 1 && stack_[n - 1].len < stack_[n + 1].len) --n;
      merge_at(n);
    }
  }

  // Locates key in sorted [base, base+len) returning the *leftmost* index at
  // which key could be inserted; gallops outward from `hint`.
  std::size_t gallop_left(const T& key, std::size_t base, std::size_t len,
                          std::size_t hint) {
    PGXD_DCHECK(hint < len);
    std::size_t last_ofs = 0, ofs = 1;
    if (lt(a_[base + hint], key)) {
      // Gallop right until a_[base+hint+last_ofs] < key <= a_[base+hint+ofs].
      const std::size_t max_ofs = len - hint;
      while (ofs < max_ofs && lt(a_[base + hint + ofs], key)) {
        last_ofs = ofs;
        ofs = ofs * 2 + 1;
      }
      if (ofs > max_ofs) ofs = max_ofs;
      last_ofs += hint;
      ofs += hint;
    } else {
      // Gallop left until a_[base+hint-ofs] < key <= a_[base+hint-last_ofs].
      const std::size_t max_ofs = hint + 1;
      while (ofs < max_ofs && !lt(a_[base + hint - ofs], key)) {
        last_ofs = ofs;
        ofs = ofs * 2 + 1;
      }
      if (ofs > max_ofs) ofs = max_ofs;
      const std::size_t tmp = last_ofs;
      last_ofs = hint + 1 >= ofs ? hint + 1 - ofs : 0;
      ofs = hint - tmp;
    }
    PGXD_DCHECK(last_ofs <= ofs && ofs <= len);
    // Binary search in (last_ofs, ofs].
    std::size_t lo = last_ofs, hi = ofs;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (lt(a_[base + mid], key))
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  // Like gallop_left but returns the *rightmost* insertion point.
  std::size_t gallop_right(const T& key, std::size_t base, std::size_t len,
                           std::size_t hint) {
    PGXD_DCHECK(hint < len);
    std::size_t last_ofs = 0, ofs = 1;
    if (lt(key, a_[base + hint])) {
      // Gallop left until a_[base+hint-ofs] <= key < a_[base+hint-last_ofs].
      const std::size_t max_ofs = hint + 1;
      while (ofs < max_ofs && lt(key, a_[base + hint - ofs])) {
        last_ofs = ofs;
        ofs = ofs * 2 + 1;
      }
      if (ofs > max_ofs) ofs = max_ofs;
      const std::size_t tmp = last_ofs;
      last_ofs = hint + 1 >= ofs ? hint + 1 - ofs : 0;
      ofs = hint - tmp;
    } else {
      // Gallop right until a_[base+hint+last_ofs] <= key < a_[base+hint+ofs].
      const std::size_t max_ofs = len - hint;
      while (ofs < max_ofs && !lt(key, a_[base + hint + ofs])) {
        last_ofs = ofs;
        ofs = ofs * 2 + 1;
      }
      if (ofs > max_ofs) ofs = max_ofs;
      last_ofs += hint;
      ofs += hint;
    }
    PGXD_DCHECK(last_ofs <= ofs && ofs <= len);
    std::size_t lo = last_ofs, hi = ofs;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (lt(key, a_[base + mid]))
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }

  void merge_at(std::size_t i) {
    PGXD_DCHECK(i + 1 < stack_.size());
    std::size_t base1 = stack_[i].base;
    std::size_t len1 = stack_[i].len;
    const std::size_t base2 = stack_[i + 1].base;
    std::size_t len2 = stack_[i + 1].len;
    PGXD_DCHECK(base1 + len1 == base2);
    ++stats_.merges;

    stack_[i].len = len1 + len2;
    if (i + 2 < stack_.size()) stack_[i + 1] = stack_[i + 2];
    stack_.pop_back();

    // Skip elements of run1 already in place (all <= first of run2).
    const std::size_t k = gallop_right(a_[base2], base1, len1, 0);
    base1 += k;
    len1 -= k;
    if (len1 == 0) return;

    // Skip elements of run2 already in place (all >= last of run1).
    len2 = gallop_left(a_[base1 + len1 - 1], base2, len2, len2 - 1);
    if (len2 == 0) return;

    if (len1 <= len2)
      merge_lo(base1, len1, base2, len2);
    else
      merge_hi(base1, len1, base2, len2);
  }

  // Merge with run1 copied to temp; fills left-to-right. len1 <= len2.
  void merge_lo(std::size_t base1, std::size_t len1, std::size_t base2,
                std::size_t len2) {
    tmp_.assign(std::make_move_iterator(a_.begin() + base1),
                std::make_move_iterator(a_.begin() + base1 + len1));
    std::size_t c1 = 0;          // index into tmp_
    std::size_t c2 = base2;      // index into a_
    std::size_t dest = base1;

    a_[dest++] = std::move(a_[c2++]);
    if (--len2 == 0) {
      std::move(tmp_.begin() + c1, tmp_.begin() + c1 + len1, a_.begin() + dest);
      return;
    }
    if (len1 == 1) {
      std::move(a_.begin() + c2, a_.begin() + c2 + len2, a_.begin() + dest);
      a_[dest + len2] = std::move(tmp_[c1]);
      return;
    }

    std::size_t min_gallop = min_gallop_;
    for (;;) {
      std::size_t count1 = 0, count2 = 0;
      // One-pair-at-a-time mode.
      bool broke_out = false;
      do {
        if (lt(a_[c2], tmp_[c1])) {
          a_[dest++] = std::move(a_[c2++]);
          count2++;
          count1 = 0;
          if (--len2 == 0) {
            broke_out = true;
            break;
          }
        } else {
          a_[dest++] = std::move(tmp_[c1++]);
          count1++;
          count2 = 0;
          if (--len1 == 1) {
            broke_out = true;
            break;
          }
        }
      } while ((count1 | count2) < min_gallop);
      if (broke_out) break;

      // Galloping mode.
      do {
        count1 = gallop_right_in(a_[c2], tmp_, c1, len1);
        if (count1 != 0) {
          std::move(tmp_.begin() + c1, tmp_.begin() + c1 + count1,
                    a_.begin() + dest);
          dest += count1;
          c1 += count1;
          len1 -= count1;
          stats_.galloped_elements += count1;
          if (len1 <= 1) {
            broke_out = true;
            break;
          }
        }
        a_[dest++] = std::move(a_[c2++]);
        if (--len2 == 0) {
          broke_out = true;
          break;
        }

        count2 = gallop_left(tmp_[c1], c2, len2, 0);
        if (count2 != 0) {
          std::move(a_.begin() + c2, a_.begin() + c2 + count2, a_.begin() + dest);
          dest += count2;
          c2 += count2;
          len2 -= count2;
          stats_.galloped_elements += count2;
          if (len2 == 0) {
            broke_out = true;
            break;
          }
        }
        a_[dest++] = std::move(tmp_[c1++]);
        if (--len1 == 1) {
          broke_out = true;
          break;
        }
        if (min_gallop > 0) --min_gallop;
      } while (count1 >= kInitialMinGallop || count2 >= kInitialMinGallop);
      if (broke_out) break;
      min_gallop += 2;  // penalize leaving gallop mode
    }
    min_gallop_ = std::max<std::size_t>(min_gallop, 1);

    if (len1 == 1) {
      std::move(a_.begin() + c2, a_.begin() + c2 + len2, a_.begin() + dest);
      a_[dest + len2] = std::move(tmp_[c1]);
    } else if (len1 > 1) {
      PGXD_DCHECK(len2 == 0);
      std::move(tmp_.begin() + c1, tmp_.begin() + c1 + len1, a_.begin() + dest);
    }
  }

  // Merge with run2 copied to temp; fills right-to-left. len1 > len2.
  void merge_hi(std::size_t base1, std::size_t len1, std::size_t base2,
                std::size_t len2) {
    tmp_.assign(std::make_move_iterator(a_.begin() + base2),
                std::make_move_iterator(a_.begin() + base2 + len2));
    std::ptrdiff_t c1 = static_cast<std::ptrdiff_t>(base1 + len1 - 1);
    std::ptrdiff_t c2 = static_cast<std::ptrdiff_t>(len2 - 1);  // into tmp_
    std::ptrdiff_t dest = static_cast<std::ptrdiff_t>(base2 + len2 - 1);

    a_[dest--] = std::move(a_[c1--]);
    if (--len1 == 0) {
      std::move(tmp_.begin(), tmp_.begin() + len2,
                a_.begin() + (dest - static_cast<std::ptrdiff_t>(len2) + 1));
      return;
    }
    if (len2 == 1) {
      dest -= static_cast<std::ptrdiff_t>(len1);
      c1 -= static_cast<std::ptrdiff_t>(len1);
      std::move_backward(a_.begin() + c1 + 1, a_.begin() + c1 + 1 + len1,
                         a_.begin() + dest + 1 + len1);
      a_[dest] = std::move(tmp_[c2]);
      return;
    }

    std::size_t min_gallop = min_gallop_;
    const std::size_t run1_base = base1;
    for (;;) {
      std::size_t count1 = 0, count2 = 0;
      bool broke_out = false;
      do {
        if (lt(tmp_[c2], a_[c1])) {
          a_[dest--] = std::move(a_[c1--]);
          count1++;
          count2 = 0;
          if (--len1 == 0) {
            broke_out = true;
            break;
          }
        } else {
          a_[dest--] = std::move(tmp_[c2--]);
          count2++;
          count1 = 0;
          if (--len2 == 1) {
            broke_out = true;
            break;
          }
        }
      } while ((count1 | count2) < min_gallop);
      if (broke_out) break;

      do {
        count1 = len1 - gallop_right(tmp_[c2], run1_base, len1, len1 - 1);
        if (count1 != 0) {
          dest -= static_cast<std::ptrdiff_t>(count1);
          c1 -= static_cast<std::ptrdiff_t>(count1);
          std::move_backward(a_.begin() + c1 + 1, a_.begin() + c1 + 1 + count1,
                             a_.begin() + dest + 1 + count1);
          len1 -= count1;
          stats_.galloped_elements += count1;
          if (len1 == 0) {
            broke_out = true;
            break;
          }
        }
        a_[dest--] = std::move(tmp_[c2--]);
        if (--len2 == 1) {
          broke_out = true;
          break;
        }

        count2 = len2 - gallop_left_in(a_[c1], tmp_, 0, len2);
        if (count2 != 0) {
          dest -= static_cast<std::ptrdiff_t>(count2);
          c2 -= static_cast<std::ptrdiff_t>(count2);
          std::move(tmp_.begin() + c2 + 1, tmp_.begin() + c2 + 1 + count2,
                    a_.begin() + dest + 1);
          len2 -= count2;
          stats_.galloped_elements += count2;
          if (len2 <= 1) {
            broke_out = true;
            break;
          }
        }
        a_[dest--] = std::move(a_[c1--]);
        if (--len1 == 0) {
          broke_out = true;
          break;
        }
        if (min_gallop > 0) --min_gallop;
      } while (count1 >= kInitialMinGallop || count2 >= kInitialMinGallop);
      if (broke_out) break;
      min_gallop += 2;
    }
    min_gallop_ = std::max<std::size_t>(min_gallop, 1);

    if (len2 == 1) {
      PGXD_DCHECK(len1 > 0);
      dest -= static_cast<std::ptrdiff_t>(len1);
      c1 -= static_cast<std::ptrdiff_t>(len1);
      std::move_backward(a_.begin() + c1 + 1, a_.begin() + c1 + 1 + len1,
                         a_.begin() + dest + 1 + len1);
      a_[dest] = std::move(tmp_[c2]);
    } else if (len2 > 1) {
      PGXD_DCHECK(len1 == 0);
      std::move(tmp_.begin(), tmp_.begin() + len2,
                a_.begin() + (dest - static_cast<std::ptrdiff_t>(len2) + 1));
    }
  }

  // Binary searches over the temp buffer (merge_lo's run1 / merge_hi's run2
  // live there). Plain binary search: the asymptotic win of galloping comes
  // from the main-array searches, and the temp run is the shorter side by
  // construction. Returns the offset *within* [base, base+len).
  std::size_t gallop_right_in(const T& key, const std::vector<T>& buf,
                              std::size_t base, std::size_t len) {
    std::size_t lo = base, hi = base + len;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (lt(key, buf[mid]))
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo - base;
  }

  std::size_t gallop_left_in(const T& key, const std::vector<T>& buf,
                             std::size_t base, std::size_t len) {
    std::size_t lo = base, hi = base + len;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (lt(buf[mid], key))
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo - base;
  }

  std::span<T> a_;
  Comp comp_;
  std::vector<T> tmp_;
  std::vector<Run> stack_;
  std::size_t min_gallop_ = kInitialMinGallop;
  TimSortStats stats_;
};

}  // namespace detail

// Stable adaptive mergesort; O(n) on already-sorted or reverse-sorted input.
template <typename T, typename Comp = Less>
TimSortStats timsort(std::span<T> data, Comp comp = {}) {
  detail::TimSorter<T, Comp> sorter(data, comp);
  return sorter.sort();
}

}  // namespace pgxd::sort
