// Minimal command-line flag parsing for the benchmark harnesses.
//
// Flags look like `--name=value` or `--name value`; anything else is left in
// positional(). Unknown flags are an error so typos don't silently run the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pgxd {

class Flags {
 public:
  // Declares a flag with a help line; call before parse().
  void declare(const std::string& name, const std::string& help,
               const std::string& default_value = "");

  // Parses argv; prints help and exits on --help; aborts on unknown flags.
  void parse(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  std::uint64_t u64(const std::string& name) const;
  double f64(const std::string& name) const;
  bool boolean(const std::string& name) const;

  // Parses a comma-separated list of integers, e.g. --procs=8,16,32.
  std::vector<std::uint64_t> u64_list(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string help() const;

 private:
  struct Decl {
    std::string help;
    std::string value;
    bool set = false;
  };
  std::map<std::string, Decl> decls_;
  std::vector<std::string> positional_;
  std::string program_;
};

}  // namespace pgxd
