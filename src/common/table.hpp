// Aligned-column text tables for the benchmark harnesses; every figure and
// table reproduction prints through this so output is uniform and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgxd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  // Formatting helpers for cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 3);  // 0.1 -> "10.000%"
  static std::string fmt_bytes(std::uint64_t bytes);
  static std::string fmt_time_s(double seconds, int precision = 4);

  std::string render() const;
  // Comma-separated rendering for machine consumption; cells containing
  // commas or quotes are quoted per RFC 4180.
  std::string render_csv() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner printed before each reproduced figure/table.
void print_banner(const std::string& title, const std::string& subtitle = "");

}  // namespace pgxd
