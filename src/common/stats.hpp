// Small statistics toolkit used by workload generators, load-balance
// verification, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pgxd {

// Welford's online mean/variance; numerically stable for long streams.
//
// Also keeps a fixed-size deterministic reservoir (Algorithm R with an
// internal LCG stream, capacity kReservoirCapacity) so quantile() works on
// unbounded streams in O(capacity) memory. Quantiles are exact while
// count() <= capacity and approximate beyond it; merge() folds two
// reservoirs with selection probabilities proportional to the merged stream
// sizes, so merge-then-quantile tracks quantile-of-the-whole-stream within
// sampling error (tests pin the agreement bound). Everything is
// deterministic: same add/merge sequence, same quantiles.
class RunningStats {
 public:
  static constexpr std::size_t kReservoirCapacity = 256;

  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Linear-interpolated quantile estimate from the reservoir, q in [0, 1].
  // Returns 0 for an empty stream; q=0 / q=1 report the exact stream
  // min/max.
  double quantile(double q) const;

  void merge(const RunningStats& other);

 private:
  std::uint64_t next_rand();

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<double> reservoir_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

// Linear-interpolated percentile of an unsorted sample (copies + sorts).
double percentile(std::span<const double> xs, double p);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bucket. Used to render the Fig. 4 distribution shapes.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t count(std::size_t b) const { return counts_[b]; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t b) const;
  double bucket_hi(std::size_t b) const;

  // ASCII rendering: one row per bucket, bar scaled to `width` columns.
  std::string render(std::size_t width = 60) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Load-balance summary over per-partition sizes: the quantities the paper's
// Table II and Fig. 10 report.
struct BalanceReport {
  std::size_t partitions = 0;
  std::uint64_t total = 0;
  std::uint64_t min_size = 0;
  std::uint64_t max_size = 0;
  double min_share = 0.0;        // min_size / total
  double max_share = 0.0;        // max_size / total
  double imbalance = 0.0;        // max_size / ideal  (1.0 == perfect)
  std::uint64_t spread = 0;      // max_size - min_size (paper's "load difference")
};

BalanceReport balance_report(std::span<const std::uint64_t> sizes);

}  // namespace pgxd
