// Minimal work-queue thread pool for the shared-memory sorting library.
//
// The pool is intentionally simple: a mutex-protected FIFO and a completion
// counter. Sorting submits O(threads) coarse tasks per merge level, so queue
// contention is irrelevant; predictability and correctness are what matter.
// A pool of size 0 or 1 executes everything inline on the caller, which is
// also the degenerate path used when callers pass no pool at all.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pgxd {

class ThreadPool {
 public:
  // `threads` counts *extra* workers; 0 means run everything inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The caller participates
  // by draining the queue, so wait() makes progress even with 0 workers.
  void wait_idle();

  // Runs all tasks and waits; inline when the pool has no workers.
  void run_all(std::vector<std::function<void()>> tasks);

  // Index-based variant for the sorting hot path: runs body(i) for every
  // i in [0, count) across the workers and the caller, then waits. Work is
  // claimed through a shared atomic cursor by O(workers) runner closures, so
  // the cost is independent of `count` — no per-index heap allocation, unlike
  // the task-vector overload. `body` must be safe to invoke concurrently for
  // distinct indices and must not throw.
  template <typename F>
  void run_all(std::size_t count, F&& body) {
    if (count == 0) return;
    if (threads_.empty()) {
      for (std::size_t i = 0; i < count; ++i) body(i);
      return;
    }
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    // &body outlives the runners: we drain and wait below.
    std::remove_reference_t<F>* fn = &body;
    const std::size_t runners = std::min<std::size_t>(workers(), count);
    for (std::size_t k = 0; k < runners; ++k)
      submit([next, fn, count] {
        for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
             i < count; i = next->fetch_add(1, std::memory_order_relaxed))
          (*fn)(i);
      });
    // The caller participates through the same cursor.
    for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
         i < count; i = next->fetch_add(1, std::memory_order_relaxed))
      (*fn)(i);
    wait_idle();
  }

  // Splits [begin, end) into roughly `pieces` contiguous chunks and runs
  // body(chunk_begin, chunk_end) for each, in parallel, then waits.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t pieces,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  bool run_one();  // returns false if the queue was empty

  std::mutex mu_;  // pgxd-lock-order: pool-queue rank 10
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pgxd
