// Minimal work-queue thread pool for the shared-memory sorting library.
//
// The pool is intentionally simple: a mutex-protected FIFO and a completion
// counter. Sorting submits O(threads) coarse tasks per merge level, so queue
// contention is irrelevant; predictability and correctness are what matter.
// A pool of size 0 or 1 executes everything inline on the caller, which is
// also the degenerate path used when callers pass no pool at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pgxd {

class ThreadPool {
 public:
  // `threads` counts *extra* workers; 0 means run everything inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The caller participates
  // by draining the queue, so wait() makes progress even with 0 workers.
  void wait_idle();

  // Runs all tasks and waits; inline when the pool has no workers.
  void run_all(std::vector<std::function<void()>> tasks);

  // Splits [begin, end) into roughly `pieces` contiguous chunks and runs
  // body(chunk_begin, chunk_end) for each, in parallel, then waits.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t pieces,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  bool run_one();  // returns false if the queue was empty

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pgxd
