// Always-on checked assertions for library invariants.
//
// PGXD_CHECK is active in all build types: the simulator and the sorting
// library are full of invariants whose silent violation would produce
// plausible-but-wrong benchmark numbers, so we never compile them out.
// PGXD_DCHECK compiles out in NDEBUG builds and is for hot inner loops only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pgxd::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PGXD_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace pgxd::detail

#define PGXD_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) [[unlikely]]                                            \
      ::pgxd::detail::check_failed(#expr, __FILE__, __LINE__, nullptr);  \
  } while (false)

#define PGXD_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::pgxd::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define PGXD_DCHECK(expr) ((void)0)
#else
#define PGXD_DCHECK(expr) PGXD_CHECK(expr)
#endif
