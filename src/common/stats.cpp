#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pgxd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double p) {
  PGXD_CHECK(!xs.empty());
  PGXD_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PGXD_CHECK(hi > lo);
  PGXD_CHECK(buckets > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += n;
  total_ += n;
}

double Histogram::bucket_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t b) const { return bucket_lo(b + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int n = std::snprintf(buf, sizeof buf, "%10.3f..%-10.3f |", bucket_lo(b),
                                bucket_hi(b));
    out.append(buf, static_cast<std::size_t>(n));
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    const int m = std::snprintf(buf, sizeof buf, " %llu\n",
                                static_cast<unsigned long long>(counts_[b]));
    out.append(buf, static_cast<std::size_t>(m));
  }
  return out;
}

BalanceReport balance_report(std::span<const std::uint64_t> sizes) {
  BalanceReport r;
  r.partitions = sizes.size();
  if (sizes.empty()) return r;
  r.min_size = sizes[0];
  r.max_size = sizes[0];
  for (auto s : sizes) {
    r.total += s;
    r.min_size = std::min(r.min_size, s);
    r.max_size = std::max(r.max_size, s);
  }
  if (r.total > 0) {
    r.min_share = static_cast<double>(r.min_size) / static_cast<double>(r.total);
    r.max_share = static_cast<double>(r.max_size) / static_cast<double>(r.total);
    const double ideal =
        static_cast<double>(r.total) / static_cast<double>(r.partitions);
    r.imbalance = static_cast<double>(r.max_size) / ideal;
  }
  r.spread = r.max_size - r.min_size;
  return r;
}

}  // namespace pgxd
