#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pgxd {

// splitmix64 step: cheap, well-mixed, deterministic. Not shared with any
// workload RNG — reservoir decisions must not perturb data generation.
std::uint64_t RunningStats::next_rand() {
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);

  // Algorithm R: element n (1-based) replaces a uniformly random slot with
  // probability capacity/n once the reservoir is full.
  if (reservoir_.size() < kReservoirCapacity) {
    reservoir_.push_back(x);
  } else {
    const std::uint64_t j = next_rand() % n_;
    if (j < kReservoirCapacity) reservoir_[j] = x;
  }
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::quantile(double q) const {
  if (n_ == 0) return 0.0;
  PGXD_CHECK(q >= 0.0 && q <= 1.0);
  // Exact extremes come from the full stream, not the sample.
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  std::vector<double> sorted(reservoir_);
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }

  // Merge the reservoirs before n_ changes: fill each output slot from this
  // reservoir with probability n/(n + other.n), else from the other's, with
  // a uniform pick (with replacement) inside the chosen reservoir. When the
  // combined streams fit in one reservoir, concatenation is exact.
  if (n_ + other.n_ <= kReservoirCapacity) {
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(),
                      other.reservoir_.end());
  } else {
    std::vector<double> merged;
    merged.reserve(kReservoirCapacity);
    // Fold the other stream's RNG position in so merge order matters
    // deterministically, not semantically.
    rng_state_ ^= other.rng_state_ * 0x2545f4914f6cdd1dull;
    for (std::size_t i = 0; i < kReservoirCapacity; ++i) {
      const std::uint64_t pick = next_rand() % (n_ + other.n_);
      const std::vector<double>& src =
          pick < n_ ? reservoir_ : other.reservoir_;
      merged.push_back(src[next_rand() % src.size()]);
    }
    reservoir_ = std::move(merged);
  }

  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double p) {
  PGXD_CHECK(!xs.empty());
  PGXD_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PGXD_CHECK(hi > lo);
  PGXD_CHECK(buckets > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += n;
  total_ += n;
}

double Histogram::bucket_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t b) const { return bucket_lo(b + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int n = std::snprintf(buf, sizeof buf, "%10.3f..%-10.3f |", bucket_lo(b),
                                bucket_hi(b));
    out.append(buf, static_cast<std::size_t>(n));
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    const int m = std::snprintf(buf, sizeof buf, " %llu\n",
                                static_cast<unsigned long long>(counts_[b]));
    out.append(buf, static_cast<std::size_t>(m));
  }
  return out;
}

BalanceReport balance_report(std::span<const std::uint64_t> sizes) {
  BalanceReport r;
  r.partitions = sizes.size();
  if (sizes.empty()) return r;
  r.min_size = sizes[0];
  r.max_size = sizes[0];
  for (auto s : sizes) {
    r.total += s;
    r.min_size = std::min(r.min_size, s);
    r.max_size = std::max(r.max_size, s);
  }
  if (r.total > 0) {
    r.min_share = static_cast<double>(r.min_size) / static_cast<double>(r.total);
    r.max_share = static_cast<double>(r.max_size) / static_cast<double>(r.total);
    const double ideal =
        static_cast<double>(r.total) / static_cast<double>(r.partitions);
    r.imbalance = static_cast<double>(r.max_size) / ideal;
  }
  r.spread = r.max_size - r.min_size;
  return r;
}

}  // namespace pgxd
