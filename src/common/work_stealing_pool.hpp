// Work-stealing task pool — the shape of PGX.D's task manager (Sec. III:
// worker threads grab tasks from a list; idle workers take over other
// workers' pending tasks). Each worker owns a deque: the owner pushes and
// pops at the back (LIFO, cache-friendly for nested tasks), thieves steal
// from the front (FIFO, taking the oldest and typically largest work).
//
// Compared to common/thread_pool.hpp's single shared queue, stealing keeps
// workers busy under *irregular* task sizes — the reason PGX.D pairs it
// with edge chunking. bench/kernels_scheduling measures the difference.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace pgxd {

class WorkStealingPool {
 public:
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
  };

  // `workers` counts extra threads; 0 runs every task inline on submit.
  explicit WorkStealingPool(unsigned workers);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // Enqueues a task; callable from outside or from within a task (nested
  // submission lands on the submitting worker's own deque). Tasks must not
  // throw.
  void submit(std::function<void()> task);

  // Blocks until all submitted tasks (including nested ones) finished. Must
  // be called from outside the pool's workers.
  void wait_idle();

  // Submits all tasks and waits.
  void run_all(std::vector<std::function<void()>> tasks);

  Stats stats() const;

 private:
  struct Worker {
    std::mutex mu;  // pgxd-lock-order: worker-deque rank 10
    std::deque<std::function<void()>> deque;
    // Atomics, not plain counters: the thief bumps its own tallies while
    // holding the *victim's* deque lock, and stats() reads every worker's
    // tallies without taking any deque lock. Relaxed is enough — stats()
    // is only expected to be exact after wait_idle(), whose acquire on
    // in_flight_ orders all prior task bookkeeping.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  void worker_loop(std::size_t id);
  bool try_pop_own(std::size_t id, std::function<void()>& task);
  bool try_steal(std::size_t thief, std::function<void()>& task);
  void finish_one();

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;  // pgxd-lock-order: pool-idle rank 20
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_victim_{0};
};

}  // namespace pgxd
