#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pgxd {

ThreadPool::ThreadPool(unsigned threads) {
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PGXD_CHECK(task != nullptr);
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard lock(mu_);
    PGXD_CHECK(in_flight_ > 0);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  // Help drain the queue so waiting makes progress on any worker count.
  while (run_one()) {
  }
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (threads_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  for (auto& t : tasks) submit(std::move(t));
  wait_idle();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t pieces,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  PGXD_CHECK(end >= begin);
  const std::size_t n = end - begin;
  if (n == 0) return;
  pieces = std::clamp<std::size_t>(pieces, 1, n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    const std::size_t lo = begin + n * p / pieces;
    const std::size_t hi = begin + n * (p + 1) / pieces;
    if (lo == hi) continue;
    tasks.push_back([&body, lo, hi] { body(lo, hi); });
  }
  run_all(std::move(tasks));
}

}  // namespace pgxd
