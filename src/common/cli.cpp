#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/assert.hpp"

namespace pgxd {

void Flags::declare(const std::string& name, const std::string& help,
                    const std::string& default_value) {
  PGXD_CHECK_MSG(!decls_.count(name), "duplicate flag declaration");
  decls_[name] = Decl{help, default_value, false};
}

void Flags::parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool bare = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      // `--flag` followed by another flag (or nothing) is a bare boolean:
      // consuming the next argv here would silently eat that flag.
      bare = true;
    }
    auto it = decls_.find(name);
    if (it == decls_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), help().c_str());
      std::exit(2);
    }
    it->second.value = bare ? "true" : std::move(value);
    it->second.set = true;
  }
}

bool Flags::has(const std::string& name) const {
  auto it = decls_.find(name);
  PGXD_CHECK_MSG(it != decls_.end(), "flag not declared");
  return it->second.set;
}

std::string Flags::str(const std::string& name) const {
  auto it = decls_.find(name);
  PGXD_CHECK_MSG(it != decls_.end(), "flag not declared");
  return it->second.value;
}

std::int64_t Flags::i64(const std::string& name) const {
  return std::stoll(str(name));
}

std::uint64_t Flags::u64(const std::string& name) const {
  return std::stoull(str(name));
}

double Flags::f64(const std::string& name) const { return std::stod(str(name)); }

bool Flags::boolean(const std::string& name) const {
  const std::string v = str(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::uint64_t> Flags::u64_list(const std::string& name) const {
  std::vector<std::uint64_t> out;
  const std::string v = str(name);
  std::size_t pos = 0;
  while (pos < v.size()) {
    const std::size_t comma = v.find(',', pos);
    const std::string tok =
        v.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::stoull(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string Flags::help() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& [name, d] : decls_) {
    out += "  --" + name;
    if (!d.value.empty()) out += " (default: " + d.value + ")";
    out += "\n      " + d.help + "\n";
  }
  return out;
}

}  // namespace pgxd
