#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace pgxd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::fmt_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30))
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / static_cast<double>(1ULL << 30));
  else if (bytes >= (1ULL << 20))
    std::snprintf(buf, sizeof buf, "%.2f MiB", b / static_cast<double>(1ULL << 20));
  else if (bytes >= (1ULL << 10))
    std::snprintf(buf, sizeof buf, "%.2f KiB", b / static_cast<double>(1ULL << 10));
  else
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  return buf;
}

std::string Table::fmt_time_s(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f s", precision, seconds);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += "| ";
      line += cells[c];
      line.append(width[c] - cells[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep = "+";
  for (auto w : width) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& r : rows_) out += render_row(r);
  out += sep;
  return out;
}

std::string Table::render_csv() const {
  auto csv_cell = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto csv_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) line += ',';
      line += csv_cell(cells[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = csv_row(headers_);
  for (const auto& r : rows_) out += csv_row(r);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& title, const std::string& subtitle) {
  std::string bar(std::max<std::size_t>(title.size(), 60), '=');
  std::printf("\n%s\n%s\n", bar.c_str(), title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("%s\n", bar.c_str());
}

}  // namespace pgxd
