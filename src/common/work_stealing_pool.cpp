#include "common/work_stealing_pool.hpp"

#include "common/assert.hpp"

namespace pgxd {

namespace {
// Which worker (if any) the current thread is; -1 outside the pool. Each
// pool instance tags its workers, so nested pools would collide — the
// library only ever uses one pool per machine, and the id is reset on exit.
thread_local std::ptrdiff_t t_worker_id = -1;
}  // namespace

WorkStealingPool::WorkStealingPool(unsigned workers) {
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  PGXD_CHECK(task != nullptr);
  if (threads_.empty()) {
    task();
    return;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t target;
  if (t_worker_id >= 0 &&
      static_cast<std::size_t>(t_worker_id) < queues_.size()) {
    target = static_cast<std::size_t>(t_worker_id);  // nested: stay local
  } else {
    target = next_victim_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard lock(queues_[target]->mu);
    queues_[target]->deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::try_pop_own(std::size_t id, std::function<void()>& task) {
  auto& w = *queues_[id];
  std::lock_guard lock(w.mu);
  if (w.deque.empty()) return false;
  task = std::move(w.deque.back());
  w.deque.pop_back();
  w.executed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool WorkStealingPool::try_steal(std::size_t thief, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (thief + k) % n;
    auto& w = *queues_[victim];
    std::lock_guard lock(w.mu);
    if (w.deque.empty()) continue;
    task = std::move(w.deque.front());
    w.deque.pop_front();
    queues_[thief]->stolen.fetch_add(1, std::memory_order_relaxed);
    queues_[thief]->executed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::finish_one() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void WorkStealingPool::worker_loop(std::size_t id) {
  t_worker_id = static_cast<std::ptrdiff_t>(id);
  std::function<void()> task;
  for (;;) {
    if (try_pop_own(id, task) || try_steal(id, task)) {
      task();
      task = nullptr;
      finish_one();
      continue;
    }
    std::unique_lock lock(idle_mu_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Re-check under the lock-free queues after registering as a waiter
    // would race; a bounded wait keeps the design simple and correct.
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  t_worker_id = -1;
}

void WorkStealingPool::wait_idle() {
  PGXD_CHECK_MSG(t_worker_id == -1, "wait_idle() called from a pool worker");
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void WorkStealingPool::run_all(std::vector<std::function<void()>> tasks) {
  if (threads_.empty()) {
    for (auto& t : tasks) t();
    return;
  }
  for (auto& t : tasks) submit(std::move(t));
  wait_idle();
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  for (const auto& w : queues_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.stolen += w->stolen.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace pgxd
