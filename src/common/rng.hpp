// Deterministic, seedable random number generation.
//
// Every stochastic choice in the library (input generation, sampling,
// pivot selection) flows through these generators so a (seed, parameters)
// pair reproduces a run bit-for-bit, independent of the standard library's
// distribution implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/assert.hpp"

namespace pgxd {

// SplitMix64: used to expand a user seed into generator state.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // All-zero state is invalid; SplitMix64 output makes this effectively
    // impossible, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    PGXD_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Standard normal via Box–Muller (cached second variate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    // Avoid log(0); uniform() can return exactly 0.
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) {
    PGXD_CHECK(lambda > 0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

// Derives an independent child seed, e.g. one per simulated machine.
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  SplitMix64 sm(root ^ (0xa5a5a5a5deadbeefULL + stream * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return sm.next();
}

}  // namespace pgxd
