// Distributed single-source shortest paths (synchronous Bellman-Ford
// rounds) — the third PGX.D-style analytics workload. Edge weights are
// derived deterministically from (src, dst) so no weight storage or
// shipping is needed; relaxations for remote vertices travel as messages,
// aggregated per distinct target (the ghost pattern), and termination uses
// the all-reduce fixpoint check.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"

namespace pgxd::analytics {

inline constexpr std::uint64_t kUnreachable =
    std::numeric_limits<std::uint64_t>::max();

// Deterministic per-edge weight in [1, max_weight].
inline std::uint64_t edge_weight(graph::VertexId src, graph::VertexId dst,
                                 std::uint64_t max_weight = 100) {
  SplitMix64 sm((static_cast<std::uint64_t>(src) << 32) | dst);
  return 1 + sm.next() % max_weight;
}

struct SsspMsg {
  // (vertex, candidate distance) relaxations for the receiver's vertices.
  std::vector<std::pair<graph::VertexId, std::uint64_t>> relaxations;
  std::uint64_t changed = 0;

  SsspMsg() = default;
  SsspMsg(std::vector<std::pair<graph::VertexId, std::uint64_t>> r,
          std::uint64_t c)
      : relaxations(std::move(r)), changed(c) {}
};

struct SsspStats {
  sim::SimTime total_time = 0;
  unsigned rounds = 0;
  std::uint64_t wire_bytes = 0;
};

class DistributedSssp {
 public:
  using Cluster = rt::Cluster<SsspMsg>;

  DistributedSssp(Cluster& cluster, const graph::CsrGraph& graph,
                  const graph::Partition& partition, graph::VertexId source,
                  unsigned max_rounds = 200)
      : cluster_(cluster), graph_(graph), part_(partition), source_(source),
        max_rounds_(max_rounds) {
    PGXD_CHECK(part_.block_start.size() == cluster.size() + 1);
    PGXD_CHECK(source < graph.num_vertices());
  }

  // Returns dist[v] = weight of the shortest path source -> v (kUnreachable
  // if none), following the stored edge directions.
  std::vector<std::uint64_t> run() {
    dist_.assign(graph_.num_vertices(), kUnreachable);
    dist_[source_] = 0;
    stats_ = SsspStats{};
    stats_.total_time = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.rounds = rounds_completed_;
    stats_.wire_bytes = wire_bytes_;
    return dist_;
  }

  const SsspStats& stats() const { return stats_; }

 private:
  static constexpr int kTagRelax = 0;
  static constexpr int kTagReduceGather = 1;
  static constexpr int kTagReduceBcast = 2;

  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const graph::VertexId lo = part_.block_start[rank];
    const graph::VertexId hi = part_.block_start[rank + 1];

    for (unsigned round = 0; round < max_rounds_; ++round) {
      std::uint64_t changed = 0;
      std::vector<std::map<graph::VertexId, std::uint64_t>> remote(p);
      for (graph::VertexId v = lo; v < hi; ++v) {
        if (dist_[v] == kUnreachable) continue;
        for (const auto u : graph_.neighbors(v)) {
          const std::uint64_t cand = dist_[v] + edge_weight(v, u);
          const std::size_t owner = part_.vertex_owner[u];
          if (owner == rank) {
            if (cand < dist_[u]) {
              dist_[u] = cand;
              ++changed;
            }
          } else if (cand < dist_[u]) {  // ghost-cached filter (may be stale)
            auto [it, fresh] = remote[owner].try_emplace(u, cand);
            if (!fresh && cand < it->second) it->second = cand;
          }
        }
      }
      co_await m.compute_parallel(
          m.cost().merge_time(graph_.row_ptr()[hi] - graph_.row_ptr()[lo]));

      for (std::size_t dst = 0; dst < p; ++dst) {
        if (dst == rank) continue;
        std::vector<std::pair<graph::VertexId, std::uint64_t>> payload(
            remote[dst].begin(), remote[dst].end());
        const std::uint64_t bytes = payload.size() * 12 + 8;
        wire_bytes_ += bytes;
        comm.post(rank, dst, kTagRelax, SsspMsg(std::move(payload), 0), bytes);
      }
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(rank, kTagRelax);
        for (const auto& [v, cand] : msg.payload.relaxations) {
          if (cand < dist_[v]) {
            dist_[v] = cand;
            ++changed;
          }
        }
        co_await m.charge_copy(msg.payload.relaxations.size());
      }

      SsspMsg my_flag({}, changed);
      auto total = co_await rt::all_reduce(
          comm, rank, kTagReduceGather, kTagReduceBcast, std::move(my_flag),
          16, [](SsspMsg a, SsspMsg b) {
            a.changed += b.changed;
            return a;
          });
      if (rank == 0) rounds_completed_ = round + 1;
      if (total.changed == 0) break;
      co_await comm.barrier(rank);
    }
    co_return;
  }

  Cluster& cluster_;
  const graph::CsrGraph& graph_;
  const graph::Partition& part_;
  graph::VertexId source_;
  unsigned max_rounds_;
  std::vector<std::uint64_t> dist_;
  unsigned rounds_completed_ = 0;
  SsspStats stats_;
  std::uint64_t wire_bytes_ = 0;
};

// Single-node reference (Dijkstra).
std::vector<std::uint64_t> sssp_reference(const graph::CsrGraph& graph,
                                          graph::VertexId source);

}  // namespace pgxd::analytics
