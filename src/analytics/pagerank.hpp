// Distributed PageRank over a partitioned CSR graph — the kind of analysis
// PGX.D exists to run (Sec. III), and the paper's motivation for putting a
// sorting library inside a graph engine ("retrieving top values from their
// graph data" = PageRank + distributed sort).
//
// Push-based synchronous PageRank:
//   * vertices are partitioned into contiguous blocks (graph::Partition);
//   * each iteration, every machine scatters rank/out_degree contributions
//     along its out-edges;
//   * contributions to remote vertices are aggregated per *distinct* remote
//     target before sending — exactly the ghost-node optimization the
//     PGX.D data manager applies, reducing messages from one-per-crossing-
//     edge to one-per-ghost-vertex (measurable via wire bytes);
//   * an iteration barrier separates rounds (PageRank is a BSP algorithm).
//
// All arithmetic is real: the returned ranks match a single-node reference
// to floating-point accumulation order differences (tests bound the error).
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "runtime/cluster.hpp"

namespace pgxd::analytics {

struct PageRankConfig {
  unsigned iterations = 20;
  double damping = 0.85;
  // Aggregate contributions per distinct remote vertex before sending
  // (ghost-node optimization); false sends one message element per
  // crossing edge — the ablation case.
  bool ghost_aggregation = true;
};

struct PageRankMsg {
  // (global vertex id, contribution) pairs destined for the receiver.
  std::vector<std::pair<graph::VertexId, double>> contribs;
  unsigned iteration = 0;

  PageRankMsg() = default;
  PageRankMsg(std::vector<std::pair<graph::VertexId, double>> c, unsigned it)
      : contribs(std::move(c)), iteration(it) {}
};

struct PageRankStats {
  sim::SimTime total_time = 0;
  std::uint64_t wire_bytes = 0;
  unsigned iterations = 0;
};

class DistributedPageRank {
 public:
  using Cluster = rt::Cluster<PageRankMsg>;

  DistributedPageRank(Cluster& cluster, const graph::CsrGraph& graph,
                      const graph::Partition& partition,
                      PageRankConfig cfg = {})
      : cluster_(cluster), graph_(graph), part_(partition), cfg_(cfg) {
    PGXD_CHECK(part_.block_start.size() == cluster.size() + 1);
  }

  // Runs the fixed-iteration PageRank; returns the global rank vector
  // (assembled host-side from the per-machine blocks).
  std::vector<double> run() {
    const std::size_t p = cluster_.size();
    ranks_.assign(graph_.num_vertices(), 1.0 / graph_.num_vertices());
    next_.assign(graph_.num_vertices(), 0.0);
    stats_ = PageRankStats{};
    stats_.total_time = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.wire_bytes = wire_bytes_;
    stats_.iterations = cfg_.iterations;
    (void)p;
    return ranks_;
  }

  const PageRankStats& stats() const { return stats_; }

 private:
  static constexpr int kTagContrib = 0;

  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const graph::VertexId lo = part_.block_start[rank];
    const graph::VertexId hi = part_.block_start[rank + 1];
    const double n_inv = 1.0 / graph_.num_vertices();

    for (unsigned iter = 0; iter < cfg_.iterations; ++iter) {
      // Scatter contributions; remote ones aggregate per (dst machine,
      // target vertex).
      std::vector<std::map<graph::VertexId, double>> remote(p);
      std::vector<std::vector<std::pair<graph::VertexId, double>>> raw(p);
      std::uint64_t local_edges = 0;
      for (graph::VertexId v = lo; v < hi; ++v) {
        const auto neighbors = graph_.neighbors(v);
        if (neighbors.empty()) continue;
        const double share =
            ranks_[v] / static_cast<double>(neighbors.size());
        for (const auto u : neighbors) {
          const std::size_t owner = part_.vertex_owner[u];
          if (owner == rank) {
            next_[u] += share;
            ++local_edges;
          } else if (cfg_.ghost_aggregation) {
            remote[owner][u] += share;
          } else {
            raw[owner].emplace_back(u, share);
          }
        }
      }
      co_await m.compute_parallel(
          m.cost().merge_time(graph_.row_ptr()[hi] - graph_.row_ptr()[lo]));

      // Ship the aggregated (or raw) contributions.
      std::size_t sent_to = 0;
      for (std::size_t dst = 0; dst < p; ++dst) {
        if (dst == rank) continue;
        std::vector<std::pair<graph::VertexId, double>> payload;
        if (cfg_.ghost_aggregation) {
          payload.assign(remote[dst].begin(), remote[dst].end());
        } else {
          payload = std::move(raw[dst]);
        }
        const std::uint64_t bytes = payload.size() * 12 + 8;
        wire_bytes_ += bytes;
        comm.post(rank, dst, kTagContrib,
                  PageRankMsg(std::move(payload), iter), bytes);
        ++sent_to;
      }
      (void)sent_to;

      // Receive one contribution message from every other machine.
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(rank, kTagContrib);
        PGXD_CHECK(msg.payload.iteration == iter);
        for (const auto& [u, c] : msg.payload.contribs) next_[u] += c;
        co_await m.charge_copy(msg.payload.contribs.size());
      }

      // Apply damping to the owned block and reset scratch.
      for (graph::VertexId v = lo; v < hi; ++v) {
        ranks_[v] = (1.0 - cfg_.damping) * n_inv + cfg_.damping * next_[v];
      }
      co_await m.charge_copy(hi - lo);
      co_await comm.barrier(rank);  // iteration boundary
      for (graph::VertexId v = lo; v < hi; ++v) next_[v] = 0.0;
      co_await comm.barrier(rank);  // scratch cleared before anyone scatters
    }
    co_return;
  }

  Cluster& cluster_;
  const graph::CsrGraph& graph_;
  const graph::Partition& part_;
  PageRankConfig cfg_;
  std::vector<double> ranks_;
  std::vector<double> next_;
  PageRankStats stats_;
  std::uint64_t wire_bytes_ = 0;
};

// Single-node reference implementation for validation.
std::vector<double> pagerank_reference(const graph::CsrGraph& graph,
                                       unsigned iterations, double damping);

}  // namespace pgxd::analytics
