#include <queue>

#include "analytics/components.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/sssp.hpp"

namespace pgxd::analytics {

std::vector<double> pagerank_reference(const graph::CsrGraph& graph,
                                       unsigned iterations, double damping) {
  const std::size_t n = graph.num_vertices();
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (unsigned iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::VertexId v = 0; v < n; ++v) {
      const auto neighbors = graph.neighbors(v);
      if (neighbors.empty()) continue;
      const double share = ranks[v] / static_cast<double>(neighbors.size());
      for (const auto u : neighbors) next[u] += share;
    }
    for (graph::VertexId v = 0; v < n; ++v)
      ranks[v] = (1.0 - damping) / static_cast<double>(n) + damping * next[v];
  }
  return ranks;
}

graph::CsrGraph DistributedComponents::symmetrize(const graph::CsrGraph& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(2 * g.num_edges());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto u : g.neighbors(v)) {
      edges.push_back(graph::Edge{v, u});
      edges.push_back(graph::Edge{u, v});
    }
  }
  return graph::CsrGraph::from_edges(g.num_vertices(), edges);
}

std::vector<graph::VertexId> components_reference(const graph::CsrGraph& graph) {
  const auto sym = DistributedComponents::symmetrize(graph);
  const graph::VertexId n = sym.num_vertices();
  std::vector<graph::VertexId> label(n);
  std::vector<bool> seen(n, false);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = v;
  for (graph::VertexId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    // BFS: everything reachable from `start` gets `start` as its label
    // (start is the minimum id in its component because we scan in order).
    std::queue<graph::VertexId> frontier;
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const auto v = frontier.front();
      frontier.pop();
      label[v] = start;
      for (const auto u : sym.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          frontier.push(u);
        }
      }
    }
  }
  return label;
}

std::vector<std::uint64_t> sssp_reference(const graph::CsrGraph& graph,
                                          graph::VertexId source) {
  std::vector<std::uint64_t> dist(graph.num_vertices(), kUnreachable);
  dist[source] = 0;
  using Entry = std::pair<std::uint64_t, graph::VertexId>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.push({0, source});
  while (!frontier.empty()) {
    const auto [d, v] = frontier.top();
    frontier.pop();
    if (d > dist[v]) continue;
    for (const auto u : graph.neighbors(v)) {
      const std::uint64_t cand = d + edge_weight(v, u);
      if (cand < dist[u]) {
        dist[u] = cand;
        frontier.push({cand, u});
      }
    }
  }
  return dist;
}

}  // namespace pgxd::analytics
