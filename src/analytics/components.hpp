// Distributed connected components via label propagation (treating edges
// as undirected): every vertex repeatedly adopts the minimum label among
// itself and its neighbours until a global fixpoint, detected with an
// all-reduce over per-machine change flags. A second PGX.D-style analytics
// workload over the same runtime, exercising the collectives.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"

namespace pgxd::analytics {

struct ComponentsMsg {
  // (vertex, candidate label) updates for vertices the receiver owns.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> updates;
  std::uint64_t changed = 0;  // all-reduce payload

  ComponentsMsg() = default;
  ComponentsMsg(std::vector<std::pair<graph::VertexId, graph::VertexId>> u,
                std::uint64_t c)
      : updates(std::move(u)), changed(c) {}
};

struct ComponentsStats {
  sim::SimTime total_time = 0;
  unsigned rounds = 0;
  std::uint64_t wire_bytes = 0;
};

class DistributedComponents {
 public:
  using Cluster = rt::Cluster<ComponentsMsg>;

  DistributedComponents(Cluster& cluster, const graph::CsrGraph& graph,
                        const graph::Partition& partition,
                        unsigned max_rounds = 100)
      : cluster_(cluster), sym_(symmetrize(graph)), part_(partition),
        max_rounds_(max_rounds) {
    PGXD_CHECK(part_.block_start.size() == cluster.size() + 1);
  }

  // Undirected view: every edge present in both directions, so push-only
  // propagation reaches the whole component.
  static graph::CsrGraph symmetrize(const graph::CsrGraph& g);

  // Returns the component label (minimum reachable vertex id) per vertex.
  std::vector<graph::VertexId> run() {
    labels_.resize(sym_.num_vertices());
    for (graph::VertexId v = 0; v < sym_.num_vertices(); ++v) labels_[v] = v;
    rounds_completed_ = 0;
    stats_ = ComponentsStats{};
    stats_.total_time = cluster_.run(
        [this](rt::Machine& m) { return machine_program(m); });
    stats_.rounds = rounds_completed_;
    stats_.wire_bytes = wire_bytes_;
    return labels_;
  }

  const ComponentsStats& stats() const { return stats_; }

 private:
  static constexpr int kTagUpdates = 0;
  static constexpr int kTagReduceGather = 1;
  static constexpr int kTagReduceBcast = 2;

  sim::Task<void> machine_program(rt::Machine& m) {
    auto& comm = cluster_.comm();
    const std::size_t rank = m.rank();
    const std::size_t p = cluster_.size();
    const graph::VertexId lo = part_.block_start[rank];
    const graph::VertexId hi = part_.block_start[rank + 1];

    for (unsigned round = 0; round < max_rounds_; ++round) {
      // Push min labels along the symmetrized edges. Only owned labels are
      // written locally; candidates for remote vertices travel as messages.
      // (The labels_[u] comparison against a remote u models a ghost-cached
      // copy used purely as a *send filter*: a stale read can only fail to
      // suppress a redundant update, never inject information — the actual
      // label transfer is always the message the owner applies.)
      std::uint64_t changed = 0;
      std::vector<std::map<graph::VertexId, graph::VertexId>> remote(p);
      for (graph::VertexId v = lo; v < hi; ++v) {
        for (const auto u : sym_.neighbors(v)) {
          if (labels_[v] < labels_[u]) {
            const std::size_t owner = part_.vertex_owner[u];
            if (owner == rank) {
              labels_[u] = labels_[v];
              ++changed;
            } else {
              auto [it, fresh] = remote[owner].try_emplace(u, labels_[v]);
              if (!fresh && labels_[v] < it->second) it->second = labels_[v];
            }
          }
        }
      }
      co_await m.compute_parallel(
          m.cost().merge_time(sym_.row_ptr()[hi] - sym_.row_ptr()[lo]));

      for (std::size_t dst = 0; dst < p; ++dst) {
        if (dst == rank) continue;
        std::vector<std::pair<graph::VertexId, graph::VertexId>> payload(
            remote[dst].begin(), remote[dst].end());
        const std::uint64_t bytes = payload.size() * 8 + 8;
        wire_bytes_ += bytes;
        comm.post(rank, dst, kTagUpdates,
                  ComponentsMsg(std::move(payload), 0), bytes);
      }
      for (std::size_t i = 0; i + 1 < p; ++i) {
        auto msg = co_await comm.recv(rank, kTagUpdates);
        for (const auto& [v, label] : msg.payload.updates) {
          if (label < labels_[v]) {
            labels_[v] = label;
            ++changed;
          }
        }
        co_await m.charge_copy(msg.payload.updates.size());
      }

      // Global fixpoint check: all-reduce of change counts.
      ComponentsMsg my_flag({}, changed);
      auto total = co_await rt::all_reduce(
          comm, rank, kTagReduceGather, kTagReduceBcast, std::move(my_flag),
          16, [](ComponentsMsg a, ComponentsMsg b) {
            a.changed += b.changed;
            return a;
          });
      if (rank == 0) rounds_completed_ = round + 1;
      if (total.changed == 0) break;
      co_await comm.barrier(rank);
    }
    co_return;
  }

  Cluster& cluster_;
  graph::CsrGraph sym_;
  const graph::Partition& part_;
  unsigned max_rounds_;
  std::vector<graph::VertexId> labels_;
  unsigned rounds_completed_ = 0;
  ComponentsStats stats_;
  std::uint64_t wire_bytes_ = 0;
};

// Single-node reference (BFS over the undirected view).
std::vector<graph::VertexId> components_reference(const graph::CsrGraph& graph);

}  // namespace pgxd::analytics
